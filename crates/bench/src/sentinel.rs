//! The bench side of the run-ledger: scenario builders that execute the
//! representative experiments (the same scenarios the traces and
//! profiles pin) and fold their results into a
//! [`bgq_obs::RunManifest`], plus the figure → manifest mapping the
//! `--manifest-out` flag uses.
//!
//! Every scenario records three things: a **config fingerprint**
//! (topology, sizes, seeds, simulator constants — the sentinel refuses
//! to compare apples to oranges silently), the **scalar metrics** the
//! paper's argument rests on (aggregate throughput, speedup ratios,
//! stall totals, waterfill solve counts, the exchange multipath win
//! ratio), and the **profiler blame rollup** (top-N link blame and
//! critical-path facts via [`ScenarioManifest::attach_profile`]) so a
//! later regression diff can name the links that absorbed the lost
//! time. Wall-clock quantities (the scale sweep's solver timings) are
//! recorded under the `wall.` prefix and never serialized.
//!
//! All builders take the simulator config explicitly: the sentinel
//! binary's `--degrade-links` regression-injection knob replays the
//! same scenarios on a weakened machine, which is how the acceptance
//! path ("halve a link capacity, watch a REGRESSED verdict name the
//! link") is exercised end to end.

use crate::exchange::{exchange_point_with, ExchangePattern};
use crate::obs::TRACE_BYTES;
use crate::profile::{
    coupling_profile_with, exchange_profile_with, io_profile_with, pair_profile_with,
    resilience_profile_with,
};
use crate::resilience::{fault_plan_for, Scenario};
use crate::runner::PlanCache;
use crate::scale::scale_point_with;
use bgq_comm::Program;
use bgq_netsim::{SimConfig, SimObserver};
use bgq_obs::{ProfileArtifact, RunManifest, ScenarioManifest};
use bgq_torus::{standard_shape, NodeId, Zone, CORES_PER_NODE};
use sdm_core::{
    plan_direct, plan_via_proxies, ExchangeAlgorithm, MultipathOptions, ProxySearchConfig,
};
use std::collections::HashSet;

/// How the ledger runs its scenarios.
#[derive(Debug, Clone)]
pub struct LedgerOptions {
    /// Simulator config every scenario runs under. The default is the
    /// calibrated machine; the sentinel binary substitutes a degraded
    /// one to inject regressions.
    pub sim: SimConfig,
    /// How many most-blamed links each profiled run contributes to the
    /// scenario's blame map.
    pub top_blame: usize,
    /// Worker threads for the scale scenario's sharded rerun (0 = run
    /// the shards in-line). Simulated metrics are thread-independent —
    /// only the non-serialized `wall.` timings see this knob.
    pub threads: usize,
}

impl Default for LedgerOptions {
    fn default() -> LedgerOptions {
        LedgerOptions {
            sim: SimConfig::default(),
            top_blame: 3,
            threads: 0,
        }
    }
}

/// Record the simulator constants that shape every scenario's numbers.
/// Part of the config fingerprint: a run on a degraded machine must not
/// diff silently against the calibrated baseline.
fn sim_config_entries(s: &mut ScenarioManifest, sim: &SimConfig) {
    s.config("sim.link_bandwidth", format!("{:?}", sim.link_bandwidth));
    s.config(
        "sim.io_link_bandwidth",
        format!("{:?}", sim.io_link_bandwidth),
    );
    s.config("sim.per_flow_cap", format!("{:?}", sim.per_flow_cap));
    s.config(
        "sim.contention_penalty",
        format!("{:?}", sim.contention_penalty),
    );
    s.config(
        "sim.contention_floor",
        format!("{:?}", sim.contention_floor),
    );
}

/// Aggregate throughput of a profiled run: payload bytes over the run's
/// end time (`0` if the run never finishes — `undelivered` metrics
/// carry that story).
fn run_throughput(art: &ProfileArtifact, run: &str) -> f64 {
    let r = art.run(run).expect("run exists");
    let bytes: u64 = r.transfers.iter().map(|t| t.bytes).sum();
    if r.end_time.is_finite() && r.end_time > 0.0 {
        bytes as f64 / r.end_time
    } else {
        0.0
    }
}

/// Fold a direct-vs-multipath profile pair into throughput + speedup
/// metrics (speedup = direct end time over multipath end time, the
/// paper's headline ratio).
fn pair_metrics(s: &mut ScenarioManifest, art: &ProfileArtifact) {
    for run in &art.runs {
        s.metric(
            &format!("{}.throughput", run.name),
            run_throughput(art, &run.name),
        );
    }
    if let (Some(d), Some(m)) = (art.run("direct"), art.run("multipath")) {
        if d.end_time.is_finite() && m.end_time.is_finite() && m.end_time > 0.0 {
            s.metric("speedup", d.end_time / m.end_time);
        }
    }
}

/// fig5: the 128-node corner pair, direct vs 4-proxy multipath.
pub fn fig5_scenario(cache: &PlanCache, opts: &LedgerOptions) -> ScenarioManifest {
    let mut s = ScenarioManifest::new("fig5");
    s.config("nodes", 128);
    s.config("bytes", TRACE_BYTES);
    s.config("proxies", 4);
    sim_config_entries(&mut s, &opts.sim);
    let art = pair_profile_with(cache, &opts.sim, 128, TRACE_BYTES);
    pair_metrics(&mut s, &art);
    s.attach_profile(&art, opts.top_blame);
    s
}

/// fig6: the contended 2048-node group coupling (128 conflicting
/// pairs, 4:1 fan-in) — the same cell `results/BENCH_profile_fig6.json`
/// pins, so `obs_report --cross` can check the two artifacts agree.
pub fn fig6_scenario(cache: &PlanCache, opts: &LedgerOptions) -> ScenarioManifest {
    let mut s = ScenarioManifest::new("fig6");
    s.config("nodes", 2048);
    s.config("pairs", 128);
    s.config("bytes", TRACE_BYTES);
    sim_config_entries(&mut s, &opts.sim);
    let art = coupling_profile_with(cache, &opts.sim, 2048, 128, TRACE_BYTES);
    pair_metrics(&mut s, &art);
    s.attach_profile(&art, opts.top_blame);
    s
}

/// fig7: the 512-node corner pair (the proxy-count sweep's partition).
pub fn fig7_scenario(cache: &PlanCache, opts: &LedgerOptions) -> ScenarioManifest {
    let mut s = ScenarioManifest::new("fig7");
    s.config("nodes", 512);
    s.config("bytes", TRACE_BYTES);
    s.config("proxies", 4);
    sim_config_entries(&mut s, &opts.sim);
    let art = pair_profile_with(cache, &opts.sim, 512, TRACE_BYTES);
    pair_metrics(&mut s, &art);
    s.attach_profile(&art, opts.top_blame);
    s
}

/// io: the 2048-core sparse collective write (nodes → aggregators →
/// bridges → IONs), uniform 1 MB ranks.
pub fn io_scenario(cache: &PlanCache, opts: &LedgerOptions) -> ScenarioManifest {
    const CORES: u32 = 2048;
    let mut s = ScenarioManifest::new("io");
    s.config("cores", CORES);
    s.config("nodes", CORES / CORES_PER_NODE);
    s.config("rank_bytes", 1u64 << 20);
    sim_config_entries(&mut s, &opts.sim);
    let art = io_profile_with(cache, &opts.sim, CORES);
    s.metric("sparse_write.throughput", run_throughput(&art, "sparse_write"));
    s.attach_profile(&art, opts.top_blame);
    s
}

/// resilience: the fig5 pair under the direct-route cut, plus an
/// observed multipath run so the engine's stall/resume/fault counters
/// land in the ledger (via [`SimObserver::scalars`]).
pub fn resilience_scenario(cache: &PlanCache, opts: &LedgerOptions) -> ScenarioManifest {
    let mut s = ScenarioManifest::new("resilience");
    s.config("nodes", 128);
    s.config("bytes", TRACE_BYTES);
    s.config("scenario", "direct_cut");
    sim_config_entries(&mut s, &opts.sim);
    let art = resilience_profile_with(cache, &opts.sim, TRACE_BYTES);
    s.attach_profile(&art, opts.top_blame);

    // Observed replay of the multipath side: the profile shows *where*
    // the direct run's stall went; the observer counts *how many* flows
    // the fault epoch froze and thawed.
    let machine = cache.machine(standard_shape(128).unwrap(), &opts.sim);
    let (src, dst) = (NodeId(0), NodeId(127));
    let mut pd = Program::new(&machine);
    let hd = plan_direct(&mut pd, src, dst, TRACE_BYTES);
    let t0 = hd.completed_at(&pd.run());
    let plan = fault_plan_for(&machine, &Scenario::DirectCut, t0);
    let cfg = ProxySearchConfig {
        max_proxies: 4,
        ..Default::default()
    };
    let proxies = cache
        .proxies(machine.shape(), Zone::Z2, src, dst, &HashSet::new(), &cfg)
        .proxies();
    let mut pm = Program::new(&machine);
    plan_via_proxies(&mut pm, src, dst, TRACE_BYTES, &proxies, &MultipathOptions::default());
    let mut obs = SimObserver::new();
    let rep = pm.run_observed(&plan, &mut obs);
    s.metric("multipath.makespan", rep.end_time);
    for (name, v) in obs.scalars("sim.") {
        s.metric(&name, v);
    }
    s
}

/// scale: the 512-node full-vs-incremental waterfill comparison. The
/// simulated quantities (makespan, event/solve counts) are golden; the
/// wall-clock timings ride along under `wall.` and never serialize.
pub fn scale_scenario(opts: &LedgerOptions) -> ScenarioManifest {
    let mut s = ScenarioManifest::new("scale");
    s.config("nodes", 512);
    sim_config_entries(&mut s, &opts.sim);
    let p = scale_point_with(512, &opts.sim, opts.threads);
    s.metric("transfers", p.transfers as f64);
    s.metric("shards", p.shards as f64);
    s.metric("makespan", p.full.makespan);
    s.metric("events", p.full.events as f64);
    s.metric("full_mode.full_runs", p.full.full_runs as f64);
    s.metric("incremental_mode.full_runs", p.incremental.full_runs as f64);
    s.metric(
        "incremental_mode.incremental_runs",
        p.incremental.incremental_runs as f64,
    );
    s.metric("full_run_reduction", p.full_run_reduction());
    s.metric("wall.full.secs", p.full.wall_secs);
    s.metric("wall.incremental.secs", p.incremental.wall_secs);
    s.metric("wall.sharded.secs", p.sharded.wall_secs);
    s.metric("wall.speedup", p.speedup());
    s.metric("wall.parallel_speedup", p.parallel_speedup());
    s
}

/// exchange: the 512-node disjoint-heavy neighborhood exchange under
/// all three algorithms — the sweep cell pinned as
/// `tests/golden/exchange.csv` — plus the per-algorithm profile.
pub fn exchange_scenario(cache: &PlanCache, opts: &LedgerOptions) -> ScenarioManifest {
    let mut s = ScenarioManifest::new("exchange");
    let pattern = ExchangePattern::DisjointHeavy { bytes: TRACE_BYTES };
    s.config("nodes", 512);
    s.config("pattern", "disjoint_heavy");
    s.config("bytes", TRACE_BYTES);
    s.config("seed", crate::exchange::EXCHANGE_SEED);
    sim_config_entries(&mut s, &opts.sim);

    let point = exchange_point_with(cache, &opts.sim, 512, pattern);
    s.metric("pairs", point.pairs as f64);
    for r in &point.results {
        let name = r.algorithm.name();
        s.metric(&format!("{name}.throughput"), r.throughput);
        s.metric(&format!("{name}.makespan"), r.makespan);
        s.metric(&format!("{name}.discovery_cost"), r.discovery_cost);
    }
    s.metric("speedup", point.speedup());
    let mp = point.result(ExchangeAlgorithm::ProxyMultipath);
    s.metric("multipath.links_claimed", mp.links_claimed as f64);
    s.metric(
        "multipath.win_ratio",
        mp.pairs_multipath as f64 / (point.pairs.max(1)) as f64,
    );

    let art = exchange_profile_with(cache, &opts.sim, TRACE_BYTES);
    s.attach_profile(&art, opts.top_blame);
    s
}

/// Run every ledger scenario and assemble the manifest. This is what
/// the `sentinel` binary executes; scenario order in the output is
/// alphabetical regardless of execution order.
pub fn run_ledger(cache: &PlanCache, opts: &LedgerOptions) -> RunManifest {
    let mut m = RunManifest::default();
    m.push(fig5_scenario(cache, opts));
    m.push(fig6_scenario(cache, opts));
    m.push(fig7_scenario(cache, opts));
    m.push(io_scenario(cache, opts));
    m.push(resilience_scenario(cache, opts));
    m.push(scale_scenario(opts));
    m.push(exchange_scenario(cache, opts));
    m.validate().expect("ledger manifest must validate");
    m
}

/// The single-scenario manifest for a figure binary's `--manifest-out`,
/// or `None` for figures without a simulated execution (mirrors
/// [`crate::profile::profile_for`] scenario-for-scenario).
pub fn manifest_for(figure: &str, cache: &PlanCache) -> Option<RunManifest> {
    let opts = LedgerOptions::default();
    let scenario = match figure {
        "fig5" => fig5_scenario(cache, &opts),
        "fig6" => fig6_scenario(cache, &opts),
        "fig7" => fig7_scenario(cache, &opts),
        "fig10" | "fig11" => io_scenario(cache, &opts),
        "resilience" => resilience_scenario(cache, &opts),
        "exchange" => exchange_scenario(cache, &opts),
        "scale" => scale_scenario(&opts),
        _ => return None,
    };
    let mut m = RunManifest::default();
    m.push(scenario);
    Some(m)
}

/// One `history.jsonl` entry for a manifest (and, when a baseline
/// comparison ran, its verdict totals). Deliberately timestamp-free:
/// the history is keyed on the manifest fingerprint so re-runs of an
/// unchanged tree append nothing new.
pub fn history_line(manifest: &RunManifest, report: Option<&bgq_obs::SentinelReport>) -> String {
    let metrics: usize = manifest
        .scenarios
        .iter()
        .map(|s| {
            s.metrics
                .iter()
                .filter(|(k, _)| !k.starts_with("wall."))
                .count()
        })
        .sum();
    let mut line = format!(
        "{{\"hash\": \"{}\", \"scenarios\": {}, \"metrics\": {metrics}",
        manifest.fingerprint(),
        manifest.scenarios.len()
    );
    if let Some(rep) = report {
        let (r, i, n) = rep.totals();
        line.push_str(&format!(
            ", \"regressed\": {r}, \"improved\": {i}, \"neutral\": {n}"
        ));
    }
    line.push('}');
    line
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgq_obs::sentinel;

    #[test]
    fn fig5_scenario_is_deterministic_and_self_neutral() {
        let cache = PlanCache::new();
        let opts = LedgerOptions::default();
        let a = fig5_scenario(&cache, &opts);
        let b = fig5_scenario(&cache, &opts);
        assert_eq!(a, b, "same inputs, same scenario");
        a.validate().unwrap();
        assert!(a.metric_value("speedup").unwrap() > 1.0, "multipath wins");
        assert!(a.metric_value("direct.throughput").unwrap() > 0.0);
        assert_eq!(a.metric_value("profile.direct.undelivered"), Some(0.0));

        let mut m = RunManifest::default();
        m.push(a);
        let rep = sentinel::diff(&m, &m);
        assert!(!rep.has_regressions());
        let js = m.to_json();
        assert_eq!(RunManifest::from_json(&js).unwrap().to_json(), js);
    }

    #[test]
    fn scale_scenario_keeps_wall_metrics_out_of_the_artifact() {
        let opts = LedgerOptions::default();
        let s = scale_scenario(&opts);
        assert!(s.metric_value("wall.speedup").is_some(), "kept in memory");
        assert!(s.metric_value("makespan").unwrap() > 0.0);
        assert!(s.metric_value("full_run_reduction").unwrap() >= 1.0);
        let mut m = RunManifest::default();
        m.push(s);
        assert!(!m.to_json().contains("wall."), "never serialized");
    }

    #[test]
    fn exchange_scenario_records_the_win_ratio() {
        let cache = PlanCache::new();
        let s = exchange_scenario(&cache, &LedgerOptions::default());
        assert_eq!(s.metric_value("pairs"), Some(8.0));
        assert!(s.metric_value("speedup").unwrap() >= 1.5, "the paper's bar");
        let win = s.metric_value("multipath.win_ratio").unwrap();
        assert!((0.0..=1.0).contains(&win));
        assert!(s.metric_value("proxy_multipath.throughput").unwrap() > 0.0);
        assert!(!s.blame.is_empty(), "profiled runs contribute blame");
    }

    #[test]
    fn degraded_links_regress_with_link_attribution() {
        // The acceptance-criteria path: halve the link capacity and the
        // sentinel must flag REGRESSED verdicts whose attribution names
        // at least one blamed link.
        let cache = PlanCache::new();
        let base_opts = LedgerOptions::default();
        let mut bad_opts = LedgerOptions::default();
        bad_opts.sim.link_bandwidth *= 0.5;
        bad_opts.sim.io_link_bandwidth *= 0.5;

        let mut base = RunManifest::default();
        base.push(fig5_scenario(&cache, &base_opts));
        let mut cur = RunManifest::default();
        cur.push(fig5_scenario(&cache, &bad_opts));

        let rep = sentinel::diff(&cur, &base);
        assert!(rep.has_regressions(), "halved links must regress");
        let s = &rep.scenarios[0];
        assert!(
            !s.config_drift.is_empty(),
            "degraded sim constants show as config drift"
        );
        assert!(
            s.attribution.iter().any(|l| l.contains("link ")),
            "attribution names a link: {:?}",
            s.attribution
        );
    }

    #[test]
    fn manifest_for_mirrors_the_figure_map() {
        let cache = PlanCache::new();
        assert!(manifest_for("fig8_9", &cache).is_none());
        assert!(manifest_for("nonsense", &cache).is_none());
        let m = manifest_for("scale", &cache).unwrap();
        assert!(m.scenario("scale").is_some());
    }

    #[test]
    fn history_line_is_valid_json_and_hash_keyed() {
        let mut m = RunManifest::default();
        m.push(bgq_obs::ScenarioManifest::new("x"));
        let line = history_line(&m, None);
        bgq_obs::json::validate(&line).unwrap();
        assert!(line.contains(&m.fingerprint()));
        let rep = sentinel::diff(&m, &m);
        let line2 = history_line(&m, Some(&rep));
        bgq_obs::json::validate(&line2).unwrap();
        assert!(line2.contains("\"regressed\": 0"));
    }
}
