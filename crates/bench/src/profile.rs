//! Bottleneck-attribution profiles for the figure harnesses.
//!
//! This is the bridge between the engine's [`bgq_netsim::SimProfile`]
//! (resource indices, raw per-epoch accrual) and the topology-agnostic
//! [`bgq_obs::ProfileArtifact`] (link labels, critical paths, JSON/CSV
//! artifacts). Each figure with a representative trace also has a
//! representative *profile* ([`profile_for`]) built from the same
//! scenario, so `--profile-out` answers "why was this run slow": which
//! links the waterfill blamed, for how long, and which dependency chain
//! bounded the makespan.
//!
//! Profiles inherit the artifact contract: everything is keyed on
//! simulated time and serialized deterministically, so the JSON is
//! byte-identical across thread counts and repeated runs.

use crate::obs::TRACE_BYTES;
use crate::resilience::{fault_plan_for, Scenario};
use crate::runner::PlanCache;
use bgq_comm::{Machine, Program};
use bgq_netsim::{Binding, FaultPlan, ResourceId, SimConfig, SimOptions, SimReport};
use bgq_obs::{ProfileArtifact, Recorder, RunProfile, TransferProfile};
use bgq_torus::{shape_for_cores, standard_shape, NodeId, RankMap, Zone, CORES_PER_NODE};
use sdm_core::{
    plan_direct, plan_group_direct, plan_via_proxies, IoMoveOptions, MultipathOptions,
    ProxySearchConfig,
};
use std::collections::HashSet;

/// Human label for a simulated resource: torus links render as
/// `node:direction` (e.g. `n0:+A`), everything else (I/O stages) as
/// `io<id>`.
pub fn resource_label(machine: &Machine, r: ResourceId) -> String {
    match machine.torus_link(r) {
        Some(link) => link.to_string(),
        None => format!("io{}", r.0),
    }
}

fn binding_label(machine: &Machine, b: &Binding) -> String {
    match b {
        Binding::Link(r) => resource_label(machine, *r),
        Binding::FlowCap => "cap".to_string(),
    }
}

/// Execute `prog` under `faults` with profiling on. The report carries
/// `report.profile` and is otherwise bit-identical to an unprofiled run.
pub fn run_profiled(prog: &Program, faults: &FaultPlan) -> SimReport {
    prog.simulate(SimOptions::new().faults(faults).profiled())
}

/// Convert a profiled run into a labeled [`RunProfile`]: engine resource
/// indices become link labels, graph dependencies become the chain edges
/// the critical-path walk follows.
///
/// # Panics
/// Panics if `report` was not produced by a profiled run.
pub fn run_profile(
    name: &str,
    machine: &Machine,
    prog: &Program,
    report: &SimReport,
) -> RunProfile {
    let sp = report
        .profile
        .as_ref()
        .expect("run_profile needs a profiled report (SimOptions::profiled)");
    let mut transfers = Vec::with_capacity(sp.transfers.len());
    for (i, spec) in prog.graph().specs().iter().enumerate() {
        let tp = &sp.transfers[i];
        let delivered = report.delivery_time[i].is_finite();
        let end = if delivered {
            report.delivery_time[i]
        } else {
            report.end_time
        };
        let mut link_blame: Vec<(String, f64)> = tp
            .bottlenecked_on
            .iter()
            .map(|&(r, s)| (resource_label(machine, r), s))
            .collect();
        // Distinct resources can collide only if labels did, and they
        // don't (both label forms embed the id) — sorting suffices.
        link_blame.sort_by(|a, b| a.0.cmp(&b.0));
        transfers.push(TransferProfile {
            id: i as u32,
            label: format!("n{}->n{}", spec.src, spec.dst),
            bytes: spec.bytes,
            ready: tp.ready_time,
            start: report.flow_start_time[i],
            end,
            delivered,
            queued: tp.queued_before_start,
            cap_limited: tp.cap_limited,
            stalled: tp.stalled_by_fault,
            latency: tp.delivery_latency,
            link_blame,
            bindings: tp
                .binding_timeline
                .iter()
                .map(|(t, b)| (*t, binding_label(machine, b)))
                .collect(),
            deps: spec.deps.iter().map(|d| d.0).collect(),
        });
    }
    RunProfile {
        name: name.to_string(),
        end_time: report.end_time,
        transfers,
    }
}

/// Direct-vs-multipath profile pair on an `nodes`-node partition: the
/// corner pair, one `direct` run and one 4-proxy `multipath` run —
/// the profile twin of [`crate::obs::pair_trace`].
pub fn pair_profile(cache: &PlanCache, nodes: u32, bytes: u64) -> ProfileArtifact {
    pair_profile_with(cache, &SimConfig::default(), nodes, bytes)
}

/// [`pair_profile`] under an explicit simulator config — the run-ledger
/// uses this to profile the same scenario on a degraded machine.
pub fn pair_profile_with(
    cache: &PlanCache,
    sim: &SimConfig,
    nodes: u32,
    bytes: u64,
) -> ProfileArtifact {
    let machine = cache.machine(standard_shape(nodes).unwrap(), sim);
    let (src, dst) = (NodeId(0), NodeId(machine.num_nodes() - 1));
    let cfg = ProxySearchConfig {
        max_proxies: 4,
        ..Default::default()
    };
    let proxies = cache
        .proxies(machine.shape(), Zone::Z2, src, dst, &HashSet::new(), &cfg)
        .proxies();

    let mut pd = Program::new(&machine);
    plan_direct(&mut pd, src, dst, bytes);
    let rd = run_profiled(&pd, &FaultPlan::new());

    let mut pm = Program::new(&machine);
    plan_via_proxies(&mut pm, src, dst, bytes, &proxies, &MultipathOptions::default());
    let rm = run_profiled(&pm, &FaultPlan::new());

    ProfileArtifact {
        runs: vec![
            run_profile("direct", &machine, &pd, &rd),
            run_profile("multipath", &machine, &pm, &rm),
        ],
    }
}

/// Contended group-coupling profile: the first `pairs` nodes couple to
/// the opposed slab (fig6's placement) under a **4:1 fan-in** — source
/// `i` sends to slab node `i mod (pairs/4)`, so every destination's
/// ingress links necessarily carry four flows and the dimension-ordered
/// routes converge on shared corridor links.
///
/// This is the profiler's representative congestion scenario. The
/// figure harnesses use the aligned one-to-one pairing, which is
/// collision-free by construction: its direct baseline is bound by the
/// per-flow protocol cap, and the profile of such a run blames `cap`,
/// not links. The fan-in is the same coupling with a conflicting sparse
/// pattern (the paper's aggregation shape), which is where per-link
/// blame has something to say: the `direct` run names the converging
/// corridor links, and the per-pair 4-proxy `multipath` run shows the
/// same seconds redistributed across the proxy-path links.
pub fn coupling_profile(
    cache: &PlanCache,
    nodes: u32,
    pairs: u32,
    bytes: u64,
) -> ProfileArtifact {
    coupling_profile_with(cache, &SimConfig::default(), nodes, pairs, bytes)
}

/// [`coupling_profile`] under an explicit simulator config.
pub fn coupling_profile_with(
    cache: &PlanCache,
    sim: &SimConfig,
    nodes: u32,
    pairs: u32,
    bytes: u64,
) -> ProfileArtifact {
    let machine = cache.machine(standard_shape(nodes).unwrap(), sim);
    let n = machine.shape().num_nodes();
    assert!(pairs >= 4 && pairs <= n / 4, "need 4..=n/4 coupling pairs");
    let sources: Vec<NodeId> = (0..pairs).map(NodeId).collect();
    let base = 3 * n / 4;
    let dests: Vec<NodeId> = (0..pairs).map(|i| NodeId(base + i % (pairs / 4))).collect();

    let mut pd = Program::new(&machine);
    plan_group_direct(&mut pd, &sources, &dests, bytes);
    let rd = run_profiled(&pd, &FaultPlan::new());

    let cfg = ProxySearchConfig {
        max_proxies: 4,
        ..Default::default()
    };
    let mut pm = Program::new(&machine);
    for (&s, &d) in sources.iter().zip(&dests) {
        let proxies = cache
            .proxies(machine.shape(), Zone::Z2, s, d, &HashSet::new(), &cfg)
            .proxies();
        if proxies.is_empty() {
            plan_direct(&mut pm, s, d, bytes);
        } else {
            plan_via_proxies(&mut pm, s, d, bytes, &proxies, &MultipathOptions::default());
        }
    }
    let rm = run_profiled(&pm, &FaultPlan::new());

    ProfileArtifact {
        runs: vec![
            run_profile("direct", &machine, &pd, &rd),
            run_profile("multipath", &machine, &pm, &rm),
        ],
    }
}

/// The fig6-scale coupling profile: 128 conflicting pairs between the
/// opposed slabs of the 2048-node partition (see [`coupling_profile`]).
pub fn fig6_profile(cache: &PlanCache, bytes: u64) -> ProfileArtifact {
    coupling_profile(cache, 2048, 128, bytes)
}

/// Sparse collective-write profile at `cores` (the weak-scaling plan:
/// nodes → aggregators → bridges → IONs), uniform 1 MB ranks — the
/// profile twin of [`crate::obs::io_trace`].
pub fn io_profile(cache: &PlanCache, cores: u32) -> ProfileArtifact {
    io_profile_with(cache, &SimConfig::default(), cores)
}

/// [`io_profile`] under an explicit simulator config.
pub fn io_profile_with(cache: &PlanCache, sim: &SimConfig, cores: u32) -> ProfileArtifact {
    let shape = shape_for_cores(cores).expect("standard partition");
    let machine = cache.machine(shape, sim);
    let map = RankMap::default_map(shape, CORES_PER_NODE);
    let rank_sizes = vec![1u64 << 20; cores as usize];
    let data = bgq_workloads::coalesce_to_nodes(&map, &rank_sizes);
    let total: u64 = data.iter().map(|&(_, b)| b).sum();
    let chunk = crate::io::sim_chunk_bytes(total, shape.num_nodes());

    let mover = cache.mover(&machine);
    let mut prog = Program::new(&machine);
    mover.plan_sparse_write(
        &mut prog,
        &data,
        &IoMoveOptions {
            max_chunk: chunk,
            ..Default::default()
        },
    );
    let report = run_profiled(&prog, &FaultPlan::new());
    ProfileArtifact {
        runs: vec![run_profile("sparse_write", &machine, &prog, &report)],
    }
}

/// Fault-injection profile: the fig5 pair under the direct-route cut —
/// the `direct` run shows the stall charged to `stalled_by_fault`, the
/// `multipath` run routes around the cut and stays network-limited.
pub fn resilience_profile(cache: &PlanCache, bytes: u64) -> ProfileArtifact {
    resilience_profile_with(cache, &SimConfig::default(), bytes)
}

/// [`resilience_profile`] under an explicit simulator config.
pub fn resilience_profile_with(
    cache: &PlanCache,
    sim: &SimConfig,
    bytes: u64,
) -> ProfileArtifact {
    let machine = cache.machine(standard_shape(128).unwrap(), sim);
    let (src, dst) = (NodeId(0), NodeId(127));
    let mut pd = Program::new(&machine);
    let hd = plan_direct(&mut pd, src, dst, bytes);
    let t0 = hd.completed_at(&pd.run());
    let plan = fault_plan_for(&machine, &Scenario::DirectCut, t0);
    let rd = run_profiled(&pd, &plan);

    let cfg = ProxySearchConfig {
        max_proxies: 4,
        ..Default::default()
    };
    let proxies = cache
        .proxies(machine.shape(), Zone::Z2, src, dst, &HashSet::new(), &cfg)
        .proxies();
    let mut pm = Program::new(&machine);
    plan_via_proxies(&mut pm, src, dst, bytes, &proxies, &MultipathOptions::default());
    let rm = run_profiled(&pm, &plan);

    ProfileArtifact {
        runs: vec![
            run_profile("direct", &machine, &pd, &rd),
            run_profile("multipath", &machine, &pm, &rm),
        ],
    }
}

/// Per-algorithm neighborhood-exchange profile: the disjoint-heavy
/// pattern on a 512-node partition lowered under each
/// [`ExchangeAlgorithm`](sdm_core::ExchangeAlgorithm), one profiled run
/// per algorithm. The `direct` run's blame concentrates on the pairs'
/// own routes (each flow bound by its protocol cap on a disjoint
/// pattern); the `proxy_multipath` run shows the same payload spread
/// over the ledger's claimed links.
pub fn exchange_profile(cache: &PlanCache, bytes: u64) -> ProfileArtifact {
    exchange_profile_with(cache, &SimConfig::default(), bytes)
}

/// [`exchange_profile`] under an explicit simulator config.
pub fn exchange_profile_with(cache: &PlanCache, sim: &SimConfig, bytes: u64) -> ProfileArtifact {
    let machine = cache.machine(standard_shape(512).unwrap(), sim);
    let map = crate::exchange::ExchangePattern::DisjointHeavy { bytes }
        .build(512, crate::exchange::EXCHANGE_SEED);
    let runs = sdm_core::ExchangeAlgorithm::ALL
        .into_iter()
        .map(|alg| {
            let ex = sdm_core::NeighborhoodExchange::with_mover(cache.mover(&machine));
            let mut prog = Program::new(&machine);
            ex.plan(&mut prog, &map, alg);
            let report = run_profiled(&prog, &FaultPlan::new());
            run_profile(alg.name(), &machine, &prog, &report)
        })
        .collect();
    ProfileArtifact { runs }
}

/// The representative profile for a figure by name, or `None` for
/// figures without a simulated execution. Mirrors
/// [`crate::obs::trace_for`] scenario-for-scenario.
pub fn profile_for(figure: &str, cache: &PlanCache) -> Option<ProfileArtifact> {
    match figure {
        "fig5" => Some(pair_profile(cache, 128, TRACE_BYTES)),
        "fig6" => Some(fig6_profile(cache, TRACE_BYTES)),
        "fig7" => Some(pair_profile(cache, 512, TRACE_BYTES)),
        "fig10" | "fig11" => Some(io_profile(cache, 2048)),
        "resilience" => Some(resilience_profile(cache, TRACE_BYTES)),
        "exchange" => Some(exchange_profile(cache, TRACE_BYTES)),
        _ => None,
    }
}

/// Cap on flows given a binding track, keeping the trace a few
/// kilobytes even for the group figures.
const MAX_BINDING_FLOWS: usize = 64;

/// Render each run's binding timelines as Perfetto spans: track
/// `<run>/bindings`, one span per (flow, binding) stretch named
/// `t<id> <-- <link>`. Flows on the critical path come first; remaining
/// slots go to flows whose binding actually changed mid-run.
pub fn binding_trace(art: &ProfileArtifact) -> Recorder {
    let rec = Recorder::new();
    for run in &art.runs {
        let mut picked: Vec<u32> = run.critical_path();
        let on_path: HashSet<u32> = picked.iter().copied().collect();
        let mut rest: Vec<u32> = run
            .transfers
            .iter()
            .filter(|t| t.bindings.len() >= 2 && !on_path.contains(&t.id))
            .map(|t| t.id)
            .collect();
        rest.sort_unstable();
        picked.extend(rest);
        picked.truncate(MAX_BINDING_FLOWS);

        let track = format!("{}/bindings", run.name);
        for &id in &picked {
            let t = &run.transfers[id as usize];
            for (j, (at, label)) in t.bindings.iter().enumerate() {
                let until = t
                    .bindings
                    .get(j + 1)
                    .map(|&(next, _)| next)
                    .unwrap_or(t.end);
                rec.span(
                    &track,
                    &format!("t{id} <-- {label}"),
                    *at,
                    until,
                    &[("transfer", t.label.clone())],
                );
            }
        }
    }
    rec
}

/// [`profile_for`] plus the binding-change Perfetto trace built from it.
pub fn profile_for_with_trace(
    figure: &str,
    cache: &PlanCache,
) -> Option<(ProfileArtifact, Recorder)> {
    let art = profile_for(figure, cache)?;
    let rec = binding_trace(&art);
    Some((art, rec))
}

fn fmt_secs(s: f64) -> String {
    if s == 0.0 {
        "0".to_string()
    } else if s.abs() >= 1.0 {
        format!("{s:.3} s")
    } else if s.abs() >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.3} us", s * 1e6)
    }
}

/// Render the "why was this slow" report: per run, the aggregate time
/// decomposition, the ranked bottleneck links, and the critical path
/// with its slowest segment. Deterministic (pure function of the
/// artifact).
pub fn render_report(art: &ProfileArtifact) -> String {
    let mut out = String::new();
    for run in &art.runs {
        let n = run.transfers.len();
        out.push_str(&format!(
            "run {}: {} transfer(s), finished at {}\n",
            run.name,
            n,
            fmt_secs(run.end_time)
        ));
        let sum = |f: fn(&TransferProfile) -> f64| -> f64 { run.transfers.iter().map(f).sum() };
        let queued = sum(|t| t.queued);
        let network = run.total_network_limited();
        let cap = sum(|t| t.cap_limited);
        let stalled = sum(|t| t.stalled);
        let latency = sum(|t| t.latency);
        let total = queued + network + cap + stalled + latency;
        out.push_str("  where the flow-seconds went:\n");
        for (name, v) in [
            ("network-limited", network),
            ("cap-limited", cap),
            ("queued", queued),
            ("stalled by faults", stalled),
            ("delivery latency", latency),
        ] {
            if v > 0.0 {
                out.push_str(&format!(
                    "    {name:<18} {:>12}  ({:.1}%)\n",
                    fmt_secs(v),
                    100.0 * v / total.max(f64::MIN_POSITIVE)
                ));
            }
        }
        let undelivered = run.transfers.iter().filter(|t| !t.delivered).count();
        if undelivered > 0 {
            out.push_str(&format!(
                "    *** {undelivered} transfer(s) UNDELIVERED ***\n"
            ));
        }
        let top = run.top_bottlenecks(5);
        if top.is_empty() {
            out.push_str(
                "  no link was ever a binding resource: every flow was bound by its own\n  \
                 rate cap (the per-flow protocol limit) — add paths, not bandwidth\n",
            );
        } else {
            out.push_str("  top bottleneck links (time spent rate-limited by each):\n");
            for (i, (label, secs)) in top.iter().enumerate() {
                out.push_str(&format!(
                    "    {}. {label:<12} {:>12}\n",
                    i + 1,
                    fmt_secs(*secs)
                ));
            }
        }
        let path = run.critical_path();
        if path.len() > 1 {
            out.push_str(&format!(
                "  critical path ({} chained segment(s)):\n",
                path.len()
            ));
            for &id in &path {
                let t = &run.transfers[id as usize];
                let bound = t
                    .dominant_link()
                    .map(|(l, _)| l.to_string())
                    .unwrap_or_else(|| "cap".to_string());
                out.push_str(&format!(
                    "    t{id} {:<16} {:>12}  bound by {bound}\n",
                    t.label,
                    fmt_secs(t.elapsed())
                ));
            }
        }
        if let Some((id, secs)) = run.slowest_segment() {
            let t = &run.transfers[id as usize];
            out.push_str(&format!(
                "  slowest segment: t{id} {} at {}\n",
                t.label,
                fmt_secs(secs)
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_profile_shows_the_protocol_cap() {
        // The fig5 story: a lone pair has no link contention anywhere —
        // direct and every proxy chunk are bound by the per-flow
        // protocol cap (1.6 < 1.8 GB/s), which is exactly why multipath
        // helps. The profiler must say so rather than invent link blame.
        let cache = PlanCache::new();
        let art = pair_profile(&cache, 128, 4 << 20);
        art.validate().expect("profile accounting must balance");

        let direct = art.run("direct").unwrap();
        assert_eq!(direct.transfers.len(), 1);
        let t = &direct.transfers[0];
        assert!(t.link_blame.is_empty(), "solo pair has no contention");
        assert!(
            t.cap_limited > 0.9 * t.elapsed(),
            "direct flow is cap-bound: {t:?}"
        );

        // Proxy chains are dependency chains: the critical path walks
        // src->proxy then proxy->dst.
        let multi = art.run("multipath").unwrap();
        assert!(multi.critical_path().len() >= 2);
        assert!(multi.slowest_segment().is_some());
    }

    #[test]
    fn coupling_profile_names_bottleneck_links() {
        // The congestion story (the fig6-scale scenario scaled down to
        // test size): conflicting pairs collide on shared dimension
        // lines, and the profiler names them.
        let cache = PlanCache::new();
        let art = coupling_profile(&cache, 128, 16, 4 << 20);
        art.validate().expect("profile accounting must balance");

        let direct = art.run("direct").unwrap();
        let top = direct.top_bottlenecks(3);
        assert!(!top.is_empty(), "conflicting routes must blame links");
        assert!(
            top[0].0.contains(':'),
            "blame is labeled with a torus link, got {:?}",
            top[0].0
        );

        // The multipath run spreads blame across the proxy-path links
        // (the ISSUE acceptance bar is >= 3 distinct links).
        let multi = art.run("multipath").unwrap();
        assert!(
            multi.link_blame().len() >= 3,
            "multipath blame too narrow: {:?}",
            multi.link_blame()
        );
    }

    #[test]
    fn exchange_profile_blames_each_algorithm_separately() {
        // One run per exchange algorithm over the same disjoint-heavy
        // map, so the per-algorithm link blame is directly comparable.
        let cache = PlanCache::new();
        let art = exchange_profile(&cache, TRACE_BYTES);
        art.validate().expect("profile accounting must balance");

        let direct = art.run("direct").unwrap();
        let consensus = art.run("consensus").unwrap();
        let multi = art.run("proxy_multipath").unwrap();

        // Antipodal puts collide pairwise on the A-dimension wrap links
        // (rank i and i+256 route through the same torus line), so the
        // direct run's blame concentrates on a handful of named links —
        // exactly the congestion the ledger routes around.
        assert_eq!(direct.transfers.len(), 8);
        let blame = direct.link_blame();
        assert!(
            !blame.is_empty() && blame.len() < direct.transfers.len(),
            "blame should concentrate on shared links: {blame:?}"
        );
        assert!(blame[0].0.contains(':'), "blame names torus links: {blame:?}");
        for t in &direct.transfers {
            assert!(
                t.network_limited() > 0.9 * t.elapsed(),
                "direct puts are network-bound: {t:?}"
            );
        }

        // Consensus adds one discovery gate per participant on top of
        // the same payload puts.
        assert!(consensus.transfers.len() > direct.transfers.len());

        // Multipath splits pairs across proxies: each multipath pair
        // becomes many two-leg chunk chains, so the run has far more
        // transfers than pairs. (The critical path can still end on a
        // dependency-free direct put — the pairs the ledger left alone
        // finish last once the contended wrap links are relieved.)
        assert!(multi.transfers.len() > 2 * direct.transfers.len());
        assert!(!multi.critical_path().is_empty());
        assert!(multi.slowest_segment().is_some());

        // The per-transfer decomposition sums to elapsed in every run
        // (validate checked the tolerance; spot-check the totals here).
        for run in &art.runs {
            for t in &run.transfers {
                assert!((t.accounted() - t.elapsed()).abs() <= 1e-6 * t.elapsed().max(1.0));
            }
        }
    }

    #[test]
    fn profile_artifact_is_deterministic() {
        let cache = PlanCache::new();
        let a = pair_profile(&cache, 128, 1 << 20).to_json();
        let b = pair_profile(&cache, 128, 1 << 20).to_json();
        assert_eq!(a, b, "same inputs must serialize to the same bytes");
        let back = ProfileArtifact::from_json(&a).unwrap();
        assert_eq!(back.to_json(), a, "round-trip is byte-exact");
    }

    #[test]
    fn profiled_report_matches_plain_run() {
        let cache = PlanCache::new();
        let machine = cache.machine(standard_shape(128).unwrap(), &SimConfig::default());
        let mut p = Program::new(&machine);
        plan_direct(&mut p, NodeId(0), NodeId(127), 4 << 20);
        let plain = p.run();
        let mut profiled = run_profiled(&p, &FaultPlan::new());
        assert!(profiled.profile.is_some());
        profiled.profile = None;
        assert_eq!(plain, profiled, "profiling must not perturb the engine");
    }

    #[test]
    fn resilience_profile_charges_the_stall_to_faults() {
        let cache = PlanCache::new();
        let art = resilience_profile(&cache, 4 << 20);
        art.validate().unwrap();
        let direct = art.run("direct").unwrap();
        assert!(
            direct.transfers.iter().any(|t| !t.delivered && t.stalled > 0.0),
            "cut route must show fault-stalled time"
        );
        let multi = art.run("multipath").unwrap();
        assert!(multi.transfers.iter().all(|t| t.delivered));
    }

    #[test]
    fn binding_trace_is_valid_and_labels_flows() {
        let cache = PlanCache::new();
        let (art, rec) = profile_for_with_trace("fig5", &cache).unwrap();
        let json = rec.to_chrome_json();
        bgq_obs::json::validate(&json).unwrap();
        assert!(json.contains("/bindings"), "binding tracks present");
        assert!(json.contains("t0 <-- "), "spans name the binding link");
        assert!(art.run("multipath").is_some());
        assert!(profile_for("fig8_9", &cache).is_none());
    }
}
