//! Runners for the I/O experiments: §V.B aggregation (Figure 10) and the
//! §VI HACC I/O application benchmark (Figure 11).

use crate::runner::PlanCache;
use bgq_comm::Program;
use bgq_netsim::SimConfig;
use bgq_torus::{shape_for_cores, NodeId, RankMap, CORES_PER_NODE};
use bgq_workloads::{coalesce_to_nodes, hacc_workload, pareto_sizes, uniform_sizes, ParetoParams};
use sdm_core::{AssignPolicy, IoMoveOptions};

/// The two §V.B data patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pattern {
    /// Pattern 1: uniform sizes in [0, 8 MB] (≈50% of dense).
    Uniform,
    /// Pattern 2: Pareto sizes (≈20% of dense).
    Pareto,
}

impl Pattern {
    pub fn label(self) -> &'static str {
        match self {
            Pattern::Uniform => "Pattern 1",
            Pattern::Pareto => "Pattern 2",
        }
    }
}

/// Result of one weak-scaling point.
#[derive(Debug, Clone, Copy)]
pub struct IoPoint {
    pub cores: u32,
    pub total_bytes: u64,
    /// Topology-aware multipath aggregation (ours), bytes/s.
    pub ours: f64,
    /// Default MPI collective I/O baseline, bytes/s.
    pub baseline: f64,
}

/// Per-rank sizes for a pattern at a core count.
pub fn pattern_sizes(pattern: Pattern, cores: u32, seed: u64) -> Vec<u64> {
    match pattern {
        Pattern::Uniform => uniform_sizes(cores, bgq_workloads::DEFAULT_MAX_BYTES, seed),
        Pattern::Pareto => pareto_sizes(cores, &ParetoParams::default(), seed),
    }
}

/// Pick a simulation chunk granularity that keeps the transfer count
/// manageable at scale while staying ≥ the 16 MB collective buffer used
/// at small scale. The same value is used for our aggregation chunks and
/// the baseline's collective buffer so neither side gets a pipelining
/// advantage from the simulator's granularity.
pub fn sim_chunk_bytes(total: u64, nodes: u32) -> u64 {
    let per_node = total / nodes.max(1) as u64;
    (per_node / 2).clamp(16 << 20, 256 << 20)
}

/// Run one aggregation experiment (both approaches) for per-rank sizes,
/// reusing `cache`'s machine and aggregator table for the shape.
pub fn run_io_point_with(cache: &PlanCache, cores: u32, rank_sizes: &[u64]) -> IoPoint {
    let shape = shape_for_cores(cores)
        .unwrap_or_else(|| panic!("no standard partition for {cores} cores"));
    let machine = cache.machine(shape, &SimConfig::default());
    let map = RankMap::default_map(shape, CORES_PER_NODE);
    let data: Vec<(NodeId, u64)> = coalesce_to_nodes(&map, rank_sizes);
    let total: u64 = data.iter().map(|&(_, b)| b).sum();
    let chunk = sim_chunk_bytes(total, shape.num_nodes());

    // Ours: dynamic topology-aware aggregation (Algorithm 2).
    let mover = cache.mover(&machine);
    let opts = IoMoveOptions {
        max_chunk: chunk,
        ..Default::default()
    };
    let mut prog = Program::new(&machine);
    let plan = mover.plan_sparse_write(&mut prog, &data, &opts);
    let ours = plan.handle.throughput(&prog.run());

    // Baseline: default MPI collective I/O.
    let cfg = bgq_iosys::CollectiveIoConfig {
        cb_buffer: chunk,
        ..Default::default()
    };
    let mut prog = Program::new(&machine);
    let handle = bgq_iosys::plan_collective_write(&mut prog, &data, &cfg);
    let baseline = handle.throughput(&prog.run());

    IoPoint {
        cores,
        total_bytes: total,
        ours,
        baseline,
    }
}

/// [`run_io_point_with`] against a private, single-use cache.
pub fn run_io_point(cores: u32, rank_sizes: &[u64]) -> IoPoint {
    run_io_point_with(&PlanCache::new(), cores, rank_sizes)
}

/// One Figure-10 point: weak-scaling aggregation throughput for a pattern.
pub fn fig10_point_with(cache: &PlanCache, cores: u32, pattern: Pattern, seed: u64) -> IoPoint {
    run_io_point_with(cache, cores, &pattern_sizes(pattern, cores, seed))
}

/// [`fig10_point_with`] against a private, single-use cache.
pub fn fig10_point(cores: u32, pattern: Pattern, seed: u64) -> IoPoint {
    fig10_point_with(&PlanCache::new(), cores, pattern, seed)
}

/// One Figure-11 point: the HACC I/O workload.
pub fn fig11_point_with(cache: &PlanCache, cores: u32) -> IoPoint {
    run_io_point_with(cache, cores, &hacc_workload(cores))
}

/// [`fig11_point_with`] against a private, single-use cache.
pub fn fig11_point(cores: u32) -> IoPoint {
    fig11_point_with(&PlanCache::new(), cores)
}

/// Our aggregation throughput under one assignment policy (the unit of
/// the policy-ablation table).
pub fn policy_point_with(
    cache: &PlanCache,
    cores: u32,
    pattern: Pattern,
    seed: u64,
    policy: AssignPolicy,
) -> f64 {
    let shape = shape_for_cores(cores).unwrap();
    let machine = cache.machine(shape, &SimConfig::default());
    let map = RankMap::default_map(shape, CORES_PER_NODE);
    let data = coalesce_to_nodes(&map, &pattern_sizes(pattern, cores, seed));
    let total: u64 = data.iter().map(|&(_, b)| b).sum();
    let chunk = sim_chunk_bytes(total, shape.num_nodes());
    let mover = cache.mover(&machine);

    let opts = IoMoveOptions {
        max_chunk: chunk,
        policy,
        ..Default::default()
    };
    let mut prog = Program::new(&machine);
    let plan = mover.plan_sparse_write(&mut prog, &data, &opts);
    plan.handle.throughput(&prog.run())
}

/// Ablation: our aggregation with the pset-local assignment policy
/// instead of global balancing (quantifies the value of spreading load
/// over all IONs). Returns `(balanced, pset-local)`.
pub fn ablation_policy_point_with(
    cache: &PlanCache,
    cores: u32,
    pattern: Pattern,
    seed: u64,
) -> (f64, f64) {
    (
        policy_point_with(cache, cores, pattern, seed, AssignPolicy::BalancedGreedy),
        policy_point_with(cache, cores, pattern, seed, AssignPolicy::PsetLocal),
    )
}

/// [`ablation_policy_point_with`] against a private, single-use cache.
pub fn ablation_policy_point(cores: u32, pattern: Pattern, seed: u64) -> (f64, f64) {
    ablation_policy_point_with(&PlanCache::new(), cores, pattern, seed)
}

/// The paper's weak-scaling core counts for Figure 10 (2,048 → 131,072)
/// capped at `max_cores`.
pub fn fig10_scales(max_cores: u32) -> Vec<u32> {
    [2048u32, 4096, 8192, 16384, 32768, 65536, 131072]
        .into_iter()
        .filter(|&c| c <= max_cores)
        .collect()
}

/// The Figure-11 core counts (8,192 → 131,072) capped at `max_cores`.
pub fn fig11_scales(max_cores: u32) -> Vec<u32> {
    [8192u32, 16384, 32768, 65536, 131072]
        .into_iter()
        .filter(|&c| c <= max_cores)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_small_scale_ours_wins_pattern1() {
        let p = fig10_point(2048, Pattern::Uniform, 42);
        assert!(p.ours > 0.0 && p.baseline > 0.0);
        let ratio = p.ours / p.baseline;
        assert!(
            (1.4..=3.5).contains(&ratio),
            "expected ~2x at 2,048 cores (paper), got {ratio:.2} ({:.2e} vs {:.2e})",
            p.ours,
            p.baseline
        );
    }

    #[test]
    fn fig10_small_scale_ours_wins_pattern2() {
        let p = fig10_point(2048, Pattern::Pareto, 42);
        let ratio = p.ours / p.baseline;
        assert!(
            (1.2..=3.5).contains(&ratio),
            "expected ~1.5x at 2,048 cores (paper), got {ratio:.2}"
        );
    }

    #[test]
    fn fig11_hacc_ours_wins() {
        let p = fig11_point(8192);
        let ratio = p.ours / p.baseline;
        assert!(
            ratio > 1.1,
            "customized aggregators should beat default MPI-IO: {ratio:.2}"
        );
    }

    #[test]
    fn balanced_policy_beats_local_for_sparse_hacc_like_data() {
        let (balanced, local) = ablation_policy_point(2048, Pattern::Pareto, 7);
        assert!(
            balanced >= local * 0.95,
            "balanced {balanced:.2e} unexpectedly below local {local:.2e}"
        );
    }

    #[test]
    fn scales_are_capped() {
        assert_eq!(fig10_scales(8192), vec![2048, 4096, 8192]);
        assert_eq!(fig11_scales(8192), vec![8192]);
        assert_eq!(fig10_scales(131072).len(), 7);
    }

    #[test]
    fn sim_chunk_stays_in_bounds() {
        assert_eq!(sim_chunk_bytes(0, 128), 16 << 20);
        assert_eq!(sim_chunk_bytes(u64::MAX / 2, 1), 256 << 20);
        let mid = sim_chunk_bytes(128 * (64 << 20), 128);
        assert!((16 << 20..=256 << 20).contains(&mid));
    }
}
