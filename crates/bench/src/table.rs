//! Plain-text table/CSV output for the figure harnesses.

use std::fmt::Write as _;

/// A simple column-aligned table that can also dump CSV.
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Add a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:>w$}", c, w = widths[i]);
                if i + 1 < ncols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        line(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a byte count the way the paper's x-axes do (1K, 512K, 2M, …).
pub fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 20 && b.is_multiple_of(1 << 20) {
        format!("{}M", b >> 20)
    } else if b >= 1 << 10 && b.is_multiple_of(1 << 10) {
        format!("{}K", b >> 10)
    } else {
        format!("{b}")
    }
}

/// Format a throughput in GB/s with 3 decimals.
pub fn fmt_gbs(bytes_per_sec: f64) -> String {
    format!("{:.3}", bytes_per_sec / 1e9)
}

/// The doubling message-size sweep used by Figures 5–7: 1 KB to 128 MB.
pub fn paper_size_sweep() -> Vec<u64> {
    let mut v = Vec::new();
    let mut b = 1u64 << 10;
    while b <= 128 << 20 {
        v.push(b);
        b *= 2;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_matches_paper_axis() {
        let s = paper_size_sweep();
        assert_eq!(s.first(), Some(&1024));
        assert_eq!(s.last(), Some(&(128 << 20)));
        assert_eq!(s.len(), 18); // 1K..128M doubling
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(1024), "1K");
        assert_eq!(fmt_bytes(512 << 10), "512K");
        assert_eq!(fmt_bytes(128 << 20), "128M");
        assert_eq!(fmt_bytes(1000), "1000");
    }

    #[test]
    fn table_renders_and_csvs() {
        let mut t = Table::new(&["size", "GB/s"]);
        t.row(vec!["1K".into(), "0.5".into()]);
        let r = t.render();
        assert!(r.contains("size"));
        assert!(r.contains("1K"));
        assert_eq!(t.to_csv(), "size,GB/s\n1K,0.5\n");
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn bad_row_width_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }
}
