//! Sparse neighborhood exchange sweep: pattern density × message size ×
//! partition size (512 → 4,096 nodes), each point lowered under all
//! three [`ExchangeAlgorithm`]s and simulated end to end.
//!
//! The sweep answers the question the subsystem exists for: when does
//! ledger-coordinated batch proxy multipath beat the `MPI_Alltoallv`
//! baseline, and what does consensus discovery cost on top? The
//! machine-readable artifact goes to `results/BENCH_exchange.json` via
//! the `exchange` binary; the CSV golden pins a small fixed point of the
//! same sweep.
//!
//! The artifact deliberately contains no wall-clock fields — every value
//! is derived from simulated time — so a re-run byte-diffs clean against
//! the committed baseline (`just exchange`).

use crate::runner::{Experiment, PlanCache, Row};
use crate::table::{fmt_bytes, fmt_gbs};
use bgq_comm::{Program, SparseSendMap};
use bgq_netsim::SimConfig;
use bgq_torus::standard_shape;
use bgq_workloads::{disjoint_heavy_pairs, sparse_pairs};
use sdm_core::{ExchangeAlgorithm, NeighborhoodExchange};
use std::fmt::Write as _;

/// Seed for the pseudo-random sparse patterns of the sweep.
pub const EXCHANGE_SEED: u64 = 2014;

/// One traffic pattern of the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExchangePattern {
    /// Every rank sends to `fanout` random peers, sizes uniform in
    /// `[1, max_bytes]` — the dense-ish, small-message regime where
    /// combining and discovery overheads dominate.
    Sparse { fanout: u32, max_bytes: u64 },
    /// Antipodal link-disjoint pairs (one per 16th of the node space),
    /// `bytes` each — the sparse, large-message regime where batch proxy
    /// multipath has spare links to win with.
    DisjointHeavy { bytes: u64 },
}

impl ExchangePattern {
    /// Stable label for tables and artifact keys.
    pub fn label(self) -> String {
        match self {
            ExchangePattern::Sparse { fanout, max_bytes } => {
                format!("sparse f{fanout} {}", fmt_bytes(max_bytes))
            }
            ExchangePattern::DisjointHeavy { bytes } => {
                format!("disjoint {}", fmt_bytes(bytes))
            }
        }
    }

    /// Materialize the pattern's send map on an `nodes`-rank partition.
    pub fn build(self, nodes: u32, seed: u64) -> SparseSendMap {
        match self {
            ExchangePattern::Sparse { fanout, max_bytes } => {
                SparseSendMap::from_rank_pairs(&sparse_pairs(nodes, fanout, max_bytes, seed))
            }
            ExchangePattern::DisjointHeavy { bytes } => SparseSendMap::from_rank_pairs(
                &disjoint_heavy_pairs(nodes, (nodes / 16).max(1), bytes),
            ),
        }
    }
}

/// The pattern grid of the full sweep.
pub fn exchange_patterns() -> Vec<ExchangePattern> {
    vec![
        ExchangePattern::Sparse {
            fanout: 2,
            max_bytes: 256 << 10,
        },
        ExchangePattern::Sparse {
            fanout: 4,
            max_bytes: 256 << 10,
        },
        ExchangePattern::DisjointHeavy { bytes: 4 << 20 },
        ExchangePattern::DisjointHeavy { bytes: 32 << 20 },
    ]
}

/// Partition sizes of the sweep, capped at `max_nodes`.
pub fn exchange_nodes(max_nodes: u32) -> Vec<u32> {
    [512u32, 1024, 2048, 4096]
        .into_iter()
        .filter(|&n| n <= max_nodes)
        .collect()
}

/// One algorithm's simulated outcome at one sweep point.
#[derive(Debug, Clone)]
pub struct AlgoResult {
    pub algorithm: ExchangeAlgorithm,
    /// Aggregate payload throughput, bytes/s of simulated time.
    pub throughput: f64,
    /// Simulated completion time of the whole exchange.
    pub makespan: f64,
    /// Modeled discovery charge (consensus only).
    pub discovery_cost: f64,
    /// Pairs routed proxy-multipath.
    pub pairs_multipath: usize,
    /// Pairs that rode a combined carrier.
    pub pairs_combined: usize,
    /// Distinct links in the final claim ledger.
    pub links_claimed: usize,
}

/// One sweep point: one (nodes, pattern) cell under all three algorithms.
#[derive(Debug, Clone)]
pub struct ExchangePoint {
    pub nodes: u32,
    pub pattern: ExchangePattern,
    pub pairs: usize,
    pub payload_bytes: u64,
    /// In [`ExchangeAlgorithm::ALL`] order.
    pub results: Vec<AlgoResult>,
}

impl ExchangePoint {
    /// The result for one algorithm.
    pub fn result(&self, alg: ExchangeAlgorithm) -> &AlgoResult {
        self.results
            .iter()
            .find(|r| r.algorithm == alg)
            .expect("every algorithm ran")
    }

    /// Proxy-multipath aggregate throughput over the direct baseline.
    pub fn speedup(&self) -> f64 {
        let direct = self.result(ExchangeAlgorithm::Direct).throughput;
        self.result(ExchangeAlgorithm::ProxyMultipath).throughput / direct
    }
}

/// Evaluate one sweep point: build the pattern once, lower + simulate it
/// under each algorithm. Panics if any algorithm leaves payload
/// undelivered — the exchange contract is all-or-nothing.
pub fn exchange_point(cache: &PlanCache, nodes: u32, pattern: ExchangePattern) -> ExchangePoint {
    exchange_point_with(cache, &SimConfig::default(), nodes, pattern)
}

/// [`exchange_point`] under an explicit simulator config — the
/// run-ledger uses this to replay the sweep cell on a degraded machine.
pub fn exchange_point_with(
    cache: &PlanCache,
    sim: &SimConfig,
    nodes: u32,
    pattern: ExchangePattern,
) -> ExchangePoint {
    let shape = standard_shape(nodes)
        .unwrap_or_else(|| panic!("no standard {nodes}-node partition"));
    let machine = cache.machine(shape, sim);
    let map = pattern.build(nodes, EXCHANGE_SEED);
    let results = ExchangeAlgorithm::ALL
        .into_iter()
        .map(|alg| {
            let ex = NeighborhoodExchange::with_mover(cache.mover(&machine));
            let mut prog = Program::new(&machine);
            let plan = ex.plan(&mut prog, &map, alg);
            let rep = prog.run();
            assert!(
                rep.all_delivered(),
                "{alg:?} left transfers undelivered at {nodes} nodes ({pattern:?})"
            );
            AlgoResult {
                algorithm: alg,
                throughput: plan.aggregate_throughput(&rep),
                makespan: plan.completed_at(&rep),
                discovery_cost: plan.discovery_cost,
                pairs_multipath: plan.pairs_multipath(),
                pairs_combined: plan.pairs_combined(),
                links_claimed: plan.ledger.len(),
            }
        })
        .collect();
    ExchangePoint {
        nodes,
        pattern,
        pairs: map.len(),
        payload_bytes: map.total_bytes(),
        results,
    }
}

/// The exchange sweep as an [`Experiment`]: one row per (nodes, pattern)
/// cell, all three algorithms side by side.
pub struct ExchangeSweep {
    pub max_nodes: u32,
}

impl ExchangeSweep {
    pub fn new(max_nodes: u32) -> ExchangeSweep {
        ExchangeSweep { max_nodes }
    }
}

impl Experiment for ExchangeSweep {
    type Point = (u32, ExchangePattern);

    fn name(&self) -> &'static str {
        "exchange"
    }

    fn columns(&self) -> Vec<String> {
        [
            "nodes",
            "pattern",
            "pairs",
            "payload",
            "direct GB/s",
            "consensus GB/s",
            "multipath GB/s",
            "speedup",
            "mp pairs",
            "combined",
        ]
        .map(String::from)
        .to_vec()
    }

    fn points(&self) -> Vec<(u32, ExchangePattern)> {
        let mut pts = Vec::new();
        for nodes in exchange_nodes(self.max_nodes) {
            for pat in exchange_patterns() {
                pts.push((nodes, pat));
            }
        }
        pts
    }

    fn run_point(&self, cache: &PlanCache, &(nodes, pattern): &Self::Point) -> Row {
        let p = exchange_point(cache, nodes, pattern);
        let direct = p.result(ExchangeAlgorithm::Direct);
        let consensus = p.result(ExchangeAlgorithm::Consensus);
        let multipath = p.result(ExchangeAlgorithm::ProxyMultipath);
        Row::new(
            vec![
                p.nodes.to_string(),
                p.pattern.label(),
                p.pairs.to_string(),
                fmt_bytes(p.payload_bytes),
                fmt_gbs(direct.throughput),
                fmt_gbs(consensus.throughput),
                fmt_gbs(multipath.throughput),
                format!("{:.2}", p.speedup()),
                multipath.pairs_multipath.to_string(),
                multipath.pairs_combined.to_string(),
            ],
            vec![
                p.nodes as f64,
                direct.throughput,
                consensus.throughput,
                multipath.throughput,
                p.speedup(),
            ],
        )
    }

    fn footer(&self, rows: &[Row]) -> Option<String> {
        let best = rows
            .iter()
            .max_by(|a, b| a.metrics[4].partial_cmp(&b.metrics[4]).unwrap())?;
        Some(format!(
            "best multipath speedup over direct: {:.2}x at {} nodes",
            best.metrics[4], best.metrics[0] as u64
        ))
    }
}

fn json_algo(out: &mut String, r: &AlgoResult) {
    let _ = write!(
        out,
        "\"{}\":{{\"throughput\":{:?},\"makespan\":{:?},\"discovery_cost\":{:?},\
         \"pairs_multipath\":{},\"pairs_combined\":{},\"links_claimed\":{}}}",
        r.algorithm.name(),
        r.throughput,
        r.makespan,
        r.discovery_cost,
        r.pairs_multipath,
        r.pairs_combined,
        r.links_claimed
    );
}

/// Serialize a sweep as the `BENCH_exchange.json` artifact. Pure
/// simulated-time content: re-running the sweep must reproduce the bytes
/// exactly.
pub fn exchange_json(points: &[ExchangePoint]) -> String {
    let mut out = String::from("{\"experiment\":\"exchange\",\"seed\":");
    let _ = write!(out, "{EXCHANGE_SEED},\"points\":[");
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"nodes\":{},\"pattern\":\"{}\",\"pairs\":{},\"payload_bytes\":{},",
            p.nodes,
            p.pattern.label(),
            p.pairs,
            p.payload_bytes
        );
        for r in &p.results {
            json_algo(&mut out, r);
            out.push(',');
        }
        let _ = write!(out, "\"speedup\":{:?}}}", p.speedup());
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_point_shows_the_multipath_win() {
        let cache = PlanCache::new();
        let p = exchange_point(
            &cache,
            512,
            ExchangePattern::DisjointHeavy { bytes: 32 << 20 },
        );
        assert_eq!(p.pairs, 8);
        let mp = p.result(ExchangeAlgorithm::ProxyMultipath);
        assert!(mp.pairs_multipath >= p.pairs / 2, "{mp:?}");
        assert!(mp.links_claimed > 0);
        assert!(
            p.speedup() >= 1.5,
            "expected ≥1.5x on the disjoint-heavy pattern, got {:.2}",
            p.speedup()
        );
        // Consensus pays discovery on top of the same direct puts.
        let c = p.result(ExchangeAlgorithm::Consensus);
        assert!(c.discovery_cost > 0.0);
        assert!(c.makespan > p.result(ExchangeAlgorithm::Direct).makespan);
    }

    #[test]
    fn json_artifact_is_valid_and_reproducible() {
        let cache = PlanCache::new();
        let p = exchange_point(
            &cache,
            512,
            ExchangePattern::Sparse {
                fanout: 2,
                max_bytes: 64 << 10,
            },
        );
        let json = exchange_json(&[p]);
        bgq_obs::json::validate(&json).expect("BENCH_exchange.json must be valid JSON");
        let again = exchange_json(&[exchange_point(
            &PlanCache::new(),
            512,
            ExchangePattern::Sparse {
                fanout: 2,
                max_bytes: 64 << 10,
            },
        )]);
        assert_eq!(json, again, "artifact must be byte-reproducible");
    }
}
