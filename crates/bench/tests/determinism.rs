//! The parallel runner's core contract: an [`ExperimentSession`] with N
//! worker threads produces byte-identical output to a sequential run,
//! and a [`PlanCache`] hit is indistinguishable from a fresh computation.

use bgq_bench::experiments::{Fig10, Fig5};
use bgq_bench::{fig10_scales, BenchArgs, Experiment, ExperimentSession, PlanCache};
use bgq_torus::{standard_shape, NodeId, Zone};
use proptest::prelude::*;
use sdm_core::{find_proxies, ProxySearchConfig};
use std::collections::HashSet;

fn csv_of<E: Experiment>(threads: usize, exp: &E) -> (String, u64) {
    let session = ExperimentSession::new(threads);
    let run = session.run(exp);
    (
        run.table(&exp.columns()).to_csv(),
        session.cache().stats().hits,
    )
}

#[test]
fn fig5_csv_identical_across_thread_counts() {
    let exp = Fig5 {
        sizes: vec![64 << 10, 1 << 20, 16 << 20, 128 << 20],
    };
    let (seq, _) = csv_of(1, &exp);
    let (par, hits) = csv_of(4, &exp);
    assert_eq!(seq, par, "4-thread CSV must match sequential byte-for-byte");
    assert!(hits > 0, "later sizes reuse the cached machine and proxies");
}

#[test]
fn fig10_csv_identical_across_thread_counts() {
    let exp = Fig10 {
        scales: fig10_scales(2048),
    };
    let (seq, _) = csv_of(1, &exp);
    let (par, hits) = csv_of(3, &exp);
    assert_eq!(seq, par);
    // Pattern 2 at a given core count reuses pattern 1's machine and
    // aggregator table — the weak-scaling figures must show a nonzero
    // cache hit rate.
    assert!(hits > 0, "pattern 2 must hit pattern 1's cached plans");
}

#[test]
fn timing_summary_reports_cache_counters() {
    let exp = Fig5 {
        sizes: vec![64 << 10, 128 << 20],
    };
    let session = ExperimentSession::new(2).with_timing(true);
    let run = session.run(&exp);
    let summary = session.timing_summary(exp.name(), &run);
    assert!(summary.contains("plan cache:"), "{summary}");
    assert!(summary.contains("2 points"), "{summary}");
    let stats = session.cache().stats();
    assert!(stats.hit_rate() > 0.0, "{stats:?}");
}

#[test]
fn bench_args_session_round_trip() {
    let args = BenchArgs::try_parse(
        ["--threads", "4", "--timing"].iter().map(|s| s.to_string()),
    )
    .unwrap();
    let session = args.session();
    assert_eq!(session.threads(), 4);
    assert!(session.timing());
}

proptest! {
    // A cached proxy search returns exactly what a fresh search would,
    // for any endpoint pair and proxy budget.
    #[test]
    fn cached_proxy_search_equals_fresh(src in 0u32..128, dst in 0u32..128, k in 1usize..=6) {
        prop_assume!(src != dst);
        let shape = standard_shape(128).unwrap();
        let cfg = ProxySearchConfig { min_proxies: 1, max_proxies: k, ..Default::default() };
        let cache = PlanCache::new();
        let cached = cache.proxies(
            &shape, Zone::Z2, NodeId(src), NodeId(dst), &HashSet::new(), &cfg,
        );
        let fresh = find_proxies(
            &shape, Zone::Z2, NodeId(src), NodeId(dst), &HashSet::new(), &cfg,
        );
        prop_assert_eq!(cached.proxies(), fresh.proxies());
        // And the second lookup is a hit returning the same selection.
        let again = cache.proxies(
            &shape, Zone::Z2, NodeId(src), NodeId(dst), &HashSet::new(), &cfg,
        );
        prop_assert_eq!(again.proxies(), fresh.proxies());
        prop_assert!(cache.stats().hits >= 1);
    }
}
