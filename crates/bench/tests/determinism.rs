//! The parallel runner's core contract: an [`ExperimentSession`] with N
//! worker threads produces byte-identical output to a sequential run,
//! and a [`PlanCache`] hit is indistinguishable from a fresh computation.

use bgq_bench::experiments::{Fig10, Fig5};
use bgq_bench::resilience::Resilience;
use bgq_bench::{fig10_scales, BenchArgs, Experiment, ExperimentSession, PlanCache};
use bgq_comm::{Machine, Program};
use bgq_netsim::{FaultPlan, SimConfig};
use bgq_torus::{standard_shape, NodeId, Zone};
use proptest::prelude::*;
use sdm_core::{find_proxies, plan_via_proxies, MultipathOptions, ProxySearchConfig};
use std::collections::HashSet;

fn csv_of<E: Experiment>(threads: usize, exp: &E) -> (String, u64) {
    let session = ExperimentSession::new(threads);
    let run = session.run(exp);
    (
        run.table(&exp.columns()).to_csv(),
        session.cache().stats().hits,
    )
}

#[test]
fn fig5_csv_identical_across_thread_counts() {
    let exp = Fig5 {
        sizes: vec![64 << 10, 1 << 20, 16 << 20, 128 << 20],
    };
    let (seq, _) = csv_of(1, &exp);
    let (par, hits) = csv_of(4, &exp);
    assert_eq!(seq, par, "4-thread CSV must match sequential byte-for-byte");
    assert!(hits > 0, "later sizes reuse the cached machine and proxies");
}

#[test]
fn fig10_csv_identical_across_thread_counts() {
    let exp = Fig10 {
        scales: fig10_scales(2048),
    };
    let (seq, _) = csv_of(1, &exp);
    let (par, hits) = csv_of(3, &exp);
    assert_eq!(seq, par);
    // Pattern 2 at a given core count reuses pattern 1's machine and
    // aggregator table — the weak-scaling figures must show a nonzero
    // cache hit rate.
    assert!(hits > 0, "pattern 2 must hit pattern 1's cached plans");
}

#[test]
fn resilience_csv_identical_across_thread_counts() {
    // The fault-injection sweep does many chained simulations per point
    // (retry attempts, plus the fault-free baseline) — exactly the kind
    // of workload where hidden shared state would show up as cross-thread
    // divergence. Two sizes x four scenarios keeps it quick.
    let exp = Resilience::new(vec![64 << 10, 16 << 20], 20140914);
    let (seq, _) = csv_of(1, &exp);
    let (par, hits) = csv_of(4, &exp);
    assert_eq!(seq, par, "4-thread CSV must match sequential byte-for-byte");
    assert!(hits > 0, "points share the cached machine and tables");
    // And the seed is the only source of randomness: the same seed gives
    // the same bytes on a fresh session, a different seed does not.
    let (again, _) = csv_of(2, &exp);
    assert_eq!(seq, again);
    let (other, _) = csv_of(2, &Resilience::new(vec![64 << 10, 16 << 20], 4242));
    assert_ne!(seq, other, "the random scenarios must respond to the seed");
}

#[test]
fn identical_fault_plans_give_identical_sim_reports() {
    // Seeded fault plan -> bit-identical SimReport, run after run: the
    // whole resilience layer rests on this.
    let machine = Machine::new(standard_shape(128).unwrap(), SimConfig::default());
    let plan = FaultPlan::random_link_faults(
        99,
        bgq_torus::num_links(machine.shape()),
        2000.0,
        0.005,
        0.1,
    );
    assert!(!plan.is_empty());
    let proxies = find_proxies(
        machine.shape(),
        Zone::Z2,
        NodeId(0),
        NodeId(127),
        &HashSet::new(),
        &ProxySearchConfig::default(),
    )
    .proxies();
    let run = || {
        let mut prog = Program::new(&machine);
        let h = plan_via_proxies(
            &mut prog,
            NodeId(0),
            NodeId(127),
            8 << 20,
            &proxies,
            &MultipathOptions::default(),
        );
        (prog.run_with_faults(&plan), h)
    };
    let (a, _) = run();
    let (b, _) = run();
    assert_eq!(a.status, b.status, "per-transfer outcomes must replay");
    assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
    assert_eq!(a.end_time.to_bits(), b.end_time.to_bits());
    let times_bits = |r: &bgq_netsim::SimReport| {
        r.delivery_time
            .iter()
            .map(|t| t.to_bits())
            .collect::<Vec<_>>()
    };
    assert_eq!(times_bits(&a), times_bits(&b));
}

#[test]
fn timing_summary_reports_cache_counters() {
    let exp = Fig5 {
        sizes: vec![64 << 10, 128 << 20],
    };
    let session = ExperimentSession::new(2).with_timing(true);
    let run = session.run(&exp);
    let summary = session.timing_summary(exp.name(), &run);
    assert!(summary.contains("plan cache:"), "{summary}");
    assert!(summary.contains("2 points"), "{summary}");
    let stats = session.cache().stats();
    assert!(stats.hit_rate() > 0.0, "{stats:?}");
}

#[test]
fn bench_args_session_round_trip() {
    let args = BenchArgs::try_parse(
        ["--threads", "4", "--timing"].iter().map(|s| s.to_string()),
    )
    .unwrap();
    let session = args.session();
    assert_eq!(session.threads(), 4);
    assert!(session.timing());
}

proptest! {
    // A cached proxy search returns exactly what a fresh search would,
    // for any endpoint pair and proxy budget.
    #[test]
    fn cached_proxy_search_equals_fresh(src in 0u32..128, dst in 0u32..128, k in 1usize..=6) {
        prop_assume!(src != dst);
        let shape = standard_shape(128).unwrap();
        let cfg = ProxySearchConfig { min_proxies: 1, max_proxies: k, ..Default::default() };
        let cache = PlanCache::new();
        let cached = cache.proxies(
            &shape, Zone::Z2, NodeId(src), NodeId(dst), &HashSet::new(), &cfg,
        );
        let fresh = find_proxies(
            &shape, Zone::Z2, NodeId(src), NodeId(dst), &HashSet::new(), &cfg,
        );
        prop_assert_eq!(cached.proxies(), fresh.proxies());
        // And the second lookup is a hit returning the same selection.
        let again = cache.proxies(
            &shape, Zone::Z2, NodeId(src), NodeId(dst), &HashSet::new(), &cfg,
        );
        prop_assert_eq!(again.proxies(), fresh.proxies());
        prop_assert!(cache.stats().hits >= 1);
    }
}

#[test]
fn second_identical_run_is_all_cache_hits() {
    // Satellite of the observability layer: replaying an experiment on a
    // warm session must touch the cache only through hits — any miss on
    // the second run means a cache key is unstable.
    let registry = std::sync::Arc::new(bgq_obs::MetricsRegistry::new());
    let session = ExperimentSession::new(2).with_metrics(std::sync::Arc::clone(&registry));
    let exp = Fig5 {
        sizes: vec![1 << 20, 16 << 20],
    };
    session.run(&exp);
    let warm = registry.snapshot();
    session.run(&exp);
    let delta = registry.snapshot().delta_from(&warm);
    let mut hits = 0;
    for kind in ["machine", "table", "proxies", "groups"] {
        hits += delta.counter(&format!("cache.{kind}.hits")).unwrap_or(0);
        assert_eq!(
            delta.counter(&format!("cache.{kind}.misses")).unwrap_or(0),
            0,
            "second identical run must be 100% cache hits ({kind})"
        );
    }
    assert!(hits > 0, "the second run must actually consult the cache");
}

#[test]
fn observed_artifacts_identical_across_thread_counts() {
    // The observability artifacts carry only simulated-time and integer
    // quantities, so the metrics CSV and the Chrome trace must be
    // byte-identical no matter how many workers produced them.
    let run = |threads: usize| {
        let registry = std::sync::Arc::new(bgq_obs::MetricsRegistry::new());
        let session =
            ExperimentSession::new(threads).with_metrics(std::sync::Arc::clone(&registry));
        session.run(&Fig5 {
            sizes: vec![64 << 10, 16 << 20],
        });
        let trace = bgq_bench::trace_for("fig5", session.cache())
            .expect("fig5 has a representative trace")
            .to_chrome_json();
        (registry.snapshot().to_csv(), trace)
    };
    let (m1, t1) = run(1);
    let (m4, t4) = run(4);
    assert_eq!(m1, m4, "metrics CSV must not depend on the thread count");
    assert_eq!(t1, t4, "trace JSON must not depend on the thread count");
}

#[test]
fn profile_artifacts_identical_across_thread_counts_and_reruns() {
    // The bottleneck-attribution artifact is pure simulated time: its
    // JSON must be byte-identical whether the session that warmed the
    // plan cache ran on one worker or four, and replaying the profile on
    // the same cache must reproduce the bytes exactly.
    let run = |threads: usize| {
        let session = ExperimentSession::new(threads);
        session.run(&Fig5 {
            sizes: vec![64 << 10, 16 << 20],
        });
        let art = bgq_bench::profile_for("fig5", session.cache())
            .expect("fig5 has a representative profile");
        art.validate().expect("accounting must balance");
        let first = art.to_json();
        let again = bgq_bench::profile_for("fig5", session.cache())
            .expect("fig5 has a representative profile")
            .to_json();
        assert_eq!(first, again, "rerun on a warm cache must replay the bytes");
        first
    };
    let p1 = run(1);
    let p4 = run(4);
    assert_eq!(p1, p4, "profile JSON must not depend on the thread count");
    // And the artifact survives a parse/serialize round trip bit-exactly —
    // the property the `--diff` baseline workflow rests on.
    let reparsed = bgq_obs::ProfileArtifact::from_json(&p1)
        .expect("own JSON must parse")
        .to_json();
    assert_eq!(p1, reparsed, "JSON round trip must be bit-exact");
}
