//! Run profiles: per-transfer time decomposition, per-link blame, and
//! critical-path extraction, with deterministic JSON/CSV artifacts.
//!
//! This is the topology-agnostic half of the bottleneck-attribution
//! profiler. The simulator (`bgq-netsim`) attributes every active
//! nanosecond of every flow to a binding resource; the bench layer
//! resolves resource indices to human link labels and converts the
//! result into a [`RunProfile`] here. This module owns everything that
//! does *not* need the engine: the artifact schema, rollups, ranking,
//! dependency-chain (critical path) analysis, and the read-back/diff
//! used for regression checking.
//!
//! Artifact contract (shared with the rest of the crate): serialization
//! is deterministic — fixed key order, sorted link labels,
//! shortest-round-trip floats — so two identical runs produce
//! byte-identical files, and [`ProfileArtifact::from_json`] restores
//! the exact float bits [`ProfileArtifact::to_json`] wrote.

use crate::json::{self, Value};

/// Time decomposition of one transfer, with engine resource indices
/// already resolved to link labels.
///
/// Category semantics (mirroring `bgq-netsim`'s profiler): `queued` is
/// ready→first-byte (injection queueing + overhead + parked-while-down),
/// `link_blame` is time rate-limited by each named link, `cap_limited`
/// is time bound by the flow's own rate cap (the per-flow protocol
/// limit), `stalled` is fault freeze time, and `latency` is
/// drain→delivery pipeline time. The categories sum to `end - ready`
/// within float-accumulation noise ([`RunProfile::validate`] checks).
#[derive(Debug, Clone, PartialEq)]
pub struct TransferProfile {
    /// Transfer id (graph index within its run).
    pub id: u32,
    /// Human label, e.g. `"n0->n127"`.
    pub label: String,
    /// Payload size.
    pub bytes: u64,
    /// When dependencies were met; `INFINITY` if never ready.
    pub ready: f64,
    /// When the first byte moved; `INFINITY` if the flow never started.
    pub start: f64,
    /// Delivery time, or the run's `end_time` if undelivered.
    pub end: f64,
    pub delivered: bool,
    pub queued: f64,
    pub cap_limited: f64,
    pub stalled: f64,
    pub latency: f64,
    /// `(link label, seconds)` sorted by label, unique labels.
    pub link_blame: Vec<(String, f64)>,
    /// Binding change points `(time, label)`; `"cap"` = own rate cap.
    pub bindings: Vec<(f64, String)>,
    /// Ids of the transfers this one waited for (gate tokens included —
    /// the store-and-forward chaining of multipath proxy stages).
    pub deps: Vec<u32>,
}

impl TransferProfile {
    /// Total seconds rate-limited by links. (Folded from `+0.0`: an
    /// empty `Sum` would yield `-0.0`, which reads badly in reports.)
    pub fn network_limited(&self) -> f64 {
        self.link_blame.iter().fold(0.0, |a, (_, s)| a + s)
    }

    /// Sum of all categories; should equal [`elapsed`](Self::elapsed).
    pub fn accounted(&self) -> f64 {
        self.queued + self.cap_limited + self.stalled + self.latency + self.network_limited()
    }

    /// Wall time from ready to end (0 if the transfer never readied).
    pub fn elapsed(&self) -> f64 {
        if self.ready.is_finite() {
            self.end - self.ready
        } else {
            0.0
        }
    }

    /// The link this transfer spent the most time bound by.
    pub fn dominant_link(&self) -> Option<(&str, f64)> {
        self.link_blame
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(l, s)| (l.as_str(), *s))
    }
}

/// One simulated run's worth of transfer profiles.
#[derive(Debug, Clone, PartialEq)]
pub struct RunProfile {
    /// Run name, e.g. `"direct"` or `"multipath"`.
    pub name: String,
    /// Simulation clock when the run's event queue drained.
    pub end_time: f64,
    pub transfers: Vec<TransferProfile>,
}

impl RunProfile {
    /// Per-link blame rollup, sorted by label: every flow's
    /// link-limited seconds regrouped by link.
    pub fn link_blame(&self) -> Vec<(String, f64)> {
        let mut acc: std::collections::BTreeMap<&str, f64> = std::collections::BTreeMap::new();
        for t in &self.transfers {
            for (l, s) in &t.link_blame {
                *acc.entry(l.as_str()).or_insert(0.0) += s;
            }
        }
        acc.into_iter().map(|(l, s)| (l.to_string(), s)).collect()
    }

    /// Total link-limited seconds across all transfers.
    pub fn total_network_limited(&self) -> f64 {
        self.transfers
            .iter()
            .fold(0.0, |a, t| a + t.network_limited())
    }

    /// The `k` most-blamed links, descending seconds (ties by label).
    pub fn top_bottlenecks(&self, k: usize) -> Vec<(String, f64)> {
        let mut blame = self.link_blame();
        blame.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        blame.truncate(k);
        blame
    }

    /// The dependency chain ending at the transfer that finished last:
    /// walk back from the latest `end`, at each step following the
    /// dependency that delivered last (the gating one — a transfer
    /// becomes ready when its *last* dependency delivers). For multipath
    /// proxy chains this recovers the src→proxy→dst store-and-forward
    /// sequence that bounded the run. Returns transfer ids in
    /// chronological order; empty only for a run with no transfers.
    pub fn critical_path(&self) -> Vec<u32> {
        let latest = |ids: &mut dyn Iterator<Item = u32>| -> Option<u32> {
            ids.max_by(|&a, &b| {
                let (ta, tb) = (&self.transfers[a as usize], &self.transfers[b as usize]);
                ta.end.total_cmp(&tb.end).then(b.cmp(&a)) // ties: lowest id
            })
        };
        let Some(mut cur) = latest(&mut (0..self.transfers.len() as u32)) else {
            return Vec::new();
        };
        let mut path = vec![cur];
        loop {
            let deps = &self.transfers[cur as usize].deps;
            let Some(gate) = latest(&mut deps.iter().copied()) else {
                break;
            };
            // Defensive: malformed artifacts could make dep cycles;
            // never loop forever.
            if path.contains(&gate) {
                break;
            }
            path.push(gate);
            cur = gate;
        }
        path.reverse();
        path
    }

    /// The slowest segment on the critical path: the transfer whose
    /// ready→end span is largest, with that span in seconds.
    pub fn slowest_segment(&self) -> Option<(u32, f64)> {
        self.critical_path()
            .into_iter()
            .map(|id| (id, self.transfers[id as usize].elapsed()))
            .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0.cmp(&a.0)))
    }

    /// Structural and accounting invariants:
    ///
    /// * per-transfer categories sum to the elapsed time within
    ///   float-accumulation tolerance;
    /// * `link_blame` labels sorted and unique;
    /// * dependency ids in range;
    /// * no transfer ends after `end_time`.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.transfers.len();
        for t in &self.transfers {
            if t.ready.is_finite() {
                let elapsed = t.elapsed();
                let err = (t.accounted() - elapsed).abs();
                let tol = 1e-6 * elapsed.abs().max(1.0);
                if err > tol {
                    return Err(format!(
                        "run {:?} transfer {}: categories sum to {} but elapsed is {} (err {err:e})",
                        self.name,
                        t.id,
                        t.accounted(),
                        elapsed,
                    ));
                }
            }
            if !t
                .link_blame
                .windows(2)
                .all(|w| w[0].0 < w[1].0)
            {
                return Err(format!(
                    "run {:?} transfer {}: link_blame labels not sorted/unique",
                    self.name, t.id
                ));
            }
            for &d in &t.deps {
                if d as usize >= n {
                    return Err(format!(
                        "run {:?} transfer {}: dep {d} out of range ({n} transfers)",
                        self.name, t.id
                    ));
                }
            }
            if t.end > self.end_time * (1.0 + 1e-12) + 1e-12 {
                return Err(format!(
                    "run {:?} transfer {}: ends at {} after end_time {}",
                    self.name, t.id, t.end, self.end_time
                ));
            }
        }
        Ok(())
    }

    /// CSV rows for this run's transfers (no header).
    fn csv_rows(&self, out: &mut String) {
        for t in &self.transfers {
            let dom = t.dominant_link().map(|(l, _)| l).unwrap_or("");
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                self.name,
                t.id,
                t.label,
                t.bytes,
                t.delivered,
                fmt(t.ready),
                fmt(t.start),
                fmt(t.end),
                fmt(t.queued),
                fmt(t.network_limited()),
                fmt(t.cap_limited),
                fmt(t.stalled),
                fmt(t.latency),
                dom,
            ));
        }
    }
}

/// Shortest-round-trip float formatting; infinities come out as `inf`
/// (CSV only — JSON uses `null`).
fn fmt(v: f64) -> String {
    format!("{v:?}")
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        fmt(v)
    } else {
        "null".to_string()
    }
}

/// Artifact schema version (`"bgq_profile"` top-level key).
pub const PROFILE_VERSION: u64 = 1;

/// A profile artifact: one or more named runs, e.g. the direct and
/// multipath variants of a figure scenario.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProfileArtifact {
    pub runs: Vec<RunProfile>,
}

impl ProfileArtifact {
    /// Run by name.
    pub fn run(&self, name: &str) -> Option<&RunProfile> {
        self.runs.iter().find(|r| r.name == name)
    }

    /// Validate every run (see [`RunProfile::validate`]).
    pub fn validate(&self) -> Result<(), String> {
        for r in &self.runs {
            r.validate()?;
        }
        Ok(())
    }

    /// Deterministic JSON: fixed key order, sorted blame labels, floats
    /// in shortest-round-trip form, non-finite times as `null`.
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\n  \"bgq_profile\": {PROFILE_VERSION},\n  \"runs\": [");
        for (ri, r) in self.runs.iter().enumerate() {
            if ri > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\n      \"name\": {},\n      \"end_time\": {},\n      \"transfers\": [",
                json::escape(&r.name),
                json_f64(r.end_time)
            ));
            for (ti, t) in r.transfers.iter().enumerate() {
                if ti > 0 {
                    out.push(',');
                }
                let blame: Vec<String> = t
                    .link_blame
                    .iter()
                    .map(|(l, s)| format!("[{}, {}]", json::escape(l), fmt(*s)))
                    .collect();
                let binds: Vec<String> = t
                    .bindings
                    .iter()
                    .map(|(at, l)| format!("[{}, {}]", fmt(*at), json::escape(l)))
                    .collect();
                let deps: Vec<String> = t.deps.iter().map(|d| d.to_string()).collect();
                out.push_str(&format!(
                    "\n        {{\"id\": {}, \"label\": {}, \"bytes\": {}, \
                     \"ready\": {}, \"start\": {}, \"end\": {}, \"delivered\": {}, \
                     \"queued\": {}, \"cap_limited\": {}, \"stalled\": {}, \"latency\": {}, \
                     \"link_blame\": [{}], \"bindings\": [{}], \"deps\": [{}]}}",
                    t.id,
                    json::escape(&t.label),
                    t.bytes,
                    json_f64(t.ready),
                    json_f64(t.start),
                    json_f64(t.end),
                    t.delivered,
                    fmt(t.queued),
                    fmt(t.cap_limited),
                    fmt(t.stalled),
                    fmt(t.latency),
                    blame.join(", "),
                    binds.join(", "),
                    deps.join(", "),
                ));
            }
            out.push_str("\n      ]\n    }");
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Deterministic per-transfer CSV
    /// (`run,id,label,bytes,delivered,ready,start,end,queued,network_limited,cap_limited,stalled,latency,dominant_link`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "run,id,label,bytes,delivered,ready,start,end,queued,network_limited,cap_limited,stalled,latency,dominant_link\n",
        );
        for r in &self.runs {
            r.csv_rows(&mut out);
        }
        out
    }

    /// Deterministic per-link blame rollup CSV (`run,link,seconds`).
    pub fn blame_csv(&self) -> String {
        let mut out = String::from("run,link,seconds\n");
        for r in &self.runs {
            for (l, s) in r.link_blame() {
                out.push_str(&format!("{},{},{}\n", r.name, l, fmt(s)));
            }
        }
        out
    }

    /// Parse an artifact previously written by
    /// [`to_json`](Self::to_json). Floats restore bit-exactly.
    pub fn from_json(input: &str) -> Result<ProfileArtifact, String> {
        let v = json::parse(input)?;
        let version = v
            .get("bgq_profile")
            .and_then(Value::as_u64)
            .ok_or("missing \"bgq_profile\" version key")?;
        if version != PROFILE_VERSION {
            return Err(format!(
                "profile version {version} unsupported (expected {PROFILE_VERSION})"
            ));
        }
        let runs = v
            .get("runs")
            .and_then(Value::as_arr)
            .ok_or("missing \"runs\" array")?;
        let mut out = ProfileArtifact::default();
        for (ri, rv) in runs.iter().enumerate() {
            let name = rv
                .get("name")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("run {ri}: missing name"))?
                .to_string();
            let end_time = opt_f64(rv.get("end_time"))
                .ok_or_else(|| format!("run {ri}: missing end_time"))?;
            let mut transfers = Vec::new();
            for (ti, tv) in rv
                .get("transfers")
                .and_then(Value::as_arr)
                .ok_or_else(|| format!("run {ri}: missing transfers"))?
                .iter()
                .enumerate()
            {
                let ctx = || format!("run {ri} transfer {ti}");
                let f = |key: &str| {
                    opt_f64(tv.get(key)).ok_or_else(|| format!("{}: bad {key}", ctx()))
                };
                let mut link_blame = Vec::new();
                for pair in tv
                    .get("link_blame")
                    .and_then(Value::as_arr)
                    .ok_or_else(|| format!("{}: bad link_blame", ctx()))?
                {
                    let p = pair.as_arr().filter(|p| p.len() == 2);
                    let (l, s) = p
                        .and_then(|p| Some((p[0].as_str()?, p[1].as_f64()?)))
                        .ok_or_else(|| format!("{}: bad link_blame pair", ctx()))?;
                    link_blame.push((l.to_string(), s));
                }
                let mut bindings = Vec::new();
                for pair in tv
                    .get("bindings")
                    .and_then(Value::as_arr)
                    .ok_or_else(|| format!("{}: bad bindings", ctx()))?
                {
                    let p = pair.as_arr().filter(|p| p.len() == 2);
                    let (at, l) = p
                        .and_then(|p| Some((p[0].as_f64()?, p[1].as_str()?)))
                        .ok_or_else(|| format!("{}: bad bindings pair", ctx()))?;
                    bindings.push((at, l.to_string()));
                }
                let deps = tv
                    .get("deps")
                    .and_then(Value::as_arr)
                    .ok_or_else(|| format!("{}: bad deps", ctx()))?
                    .iter()
                    .map(|d| d.as_u64().map(|d| d as u32))
                    .collect::<Option<Vec<u32>>>()
                    .ok_or_else(|| format!("{}: bad dep id", ctx()))?;
                transfers.push(TransferProfile {
                    id: tv
                        .get("id")
                        .and_then(Value::as_u64)
                        .ok_or_else(|| format!("{}: bad id", ctx()))?
                        as u32,
                    label: tv
                        .get("label")
                        .and_then(Value::as_str)
                        .ok_or_else(|| format!("{}: bad label", ctx()))?
                        .to_string(),
                    bytes: tv
                        .get("bytes")
                        .and_then(Value::as_u64)
                        .ok_or_else(|| format!("{}: bad bytes", ctx()))?,
                    ready: f("ready")?,
                    start: f("start")?,
                    end: f("end")?,
                    delivered: tv
                        .get("delivered")
                        .and_then(Value::as_bool)
                        .ok_or_else(|| format!("{}: bad delivered", ctx()))?,
                    queued: f("queued")?,
                    cap_limited: f("cap_limited")?,
                    stalled: f("stalled")?,
                    latency: f("latency")?,
                    link_blame,
                    bindings,
                    deps,
                });
            }
            out.runs.push(RunProfile {
                name,
                end_time,
                transfers,
            });
        }
        Ok(out)
    }

    /// Compare against a baseline artifact for regression checking.
    /// Returns human-readable difference lines (empty = no regressions):
    /// run set changes, makespan drift beyond `1e-6` relative, transfer
    /// count changes, bottleneck-link set changes, and per-link blame
    /// drift beyond 1% relative.
    pub fn diff(&self, baseline: &ProfileArtifact) -> Vec<String> {
        let mut out = Vec::new();
        for b in &baseline.runs {
            if self.run(&b.name).is_none() {
                out.push(format!("run {:?} missing (present in baseline)", b.name));
            }
        }
        for r in &self.runs {
            let Some(b) = baseline.run(&r.name) else {
                out.push(format!("run {:?} added (absent from baseline)", r.name));
                continue;
            };
            let drift = (r.end_time - b.end_time).abs();
            if drift > 1e-6 * b.end_time.abs().max(1e-12) {
                out.push(format!(
                    "run {:?}: end_time {} vs baseline {} ({:+.3}%)",
                    r.name,
                    fmt(r.end_time),
                    fmt(b.end_time),
                    (r.end_time - b.end_time) / b.end_time * 100.0
                ));
            }
            if r.transfers.len() != b.transfers.len() {
                out.push(format!(
                    "run {:?}: {} transfers vs baseline {}",
                    r.name,
                    r.transfers.len(),
                    b.transfers.len()
                ));
            }
            let (rb, bb) = (r.link_blame(), b.link_blame());
            let bmap: std::collections::BTreeMap<&str, f64> =
                bb.iter().map(|(l, s)| (l.as_str(), *s)).collect();
            let rmap: std::collections::BTreeMap<&str, f64> =
                rb.iter().map(|(l, s)| (l.as_str(), *s)).collect();
            for (l, s) in &bmap {
                if !rmap.contains_key(l) {
                    out.push(format!(
                        "run {:?}: link {l} no longer blamed (baseline {})",
                        r.name,
                        fmt(*s)
                    ));
                }
            }
            for (l, s) in &rmap {
                match bmap.get(l) {
                    None => out.push(format!(
                        "run {:?}: new blamed link {l} ({})",
                        r.name,
                        fmt(*s)
                    )),
                    Some(bs) => {
                        if (s - bs).abs() > 0.01 * bs.abs().max(1e-12) {
                            out.push(format!(
                                "run {:?}: link {l} blame {} vs baseline {} ({:+.3}%)",
                                r.name,
                                fmt(*s),
                                fmt(*bs),
                                (s - bs) / bs * 100.0
                            ));
                        }
                    }
                }
            }
        }
        out
    }
}

fn opt_f64(v: Option<&Value>) -> Option<f64> {
    match v {
        Some(Value::Null) => Some(f64::INFINITY),
        Some(v) => v.as_f64(),
        None => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn transfer(id: u32, ready: f64, end: f64, deps: &[u32]) -> TransferProfile {
        TransferProfile {
            id,
            label: format!("t{id}"),
            bytes: 1000,
            ready,
            start: ready + 1.0,
            end,
            delivered: true,
            queued: 1.0,
            cap_limited: 0.0,
            stalled: 0.0,
            latency: 0.0,
            link_blame: vec![("l0".to_string(), end - ready - 1.0)],
            bindings: vec![(ready + 1.0, "l0".to_string())],
            deps: deps.to_vec(),
        }
    }

    fn chain_run() -> RunProfile {
        // 0 -> 1 -> 3 is the gating chain; 2 is a fast side branch.
        RunProfile {
            name: "direct".to_string(),
            end_time: 30.0,
            transfers: vec![
                transfer(0, 0.0, 10.0, &[]),
                transfer(1, 10.0, 25.0, &[0, 2]),
                transfer(2, 0.0, 5.0, &[]),
                transfer(3, 25.0, 30.0, &[1]),
            ],
        }
    }

    #[test]
    fn critical_path_follows_latest_dependency() {
        let r = chain_run();
        assert_eq!(r.critical_path(), vec![0, 1, 3]);
        // Segment 1 spans 15 s — the slowest on the path.
        assert_eq!(r.slowest_segment(), Some((1, 15.0)));
        r.validate().unwrap();
    }

    #[test]
    fn rollups_and_ranking() {
        let mut r = chain_run();
        r.transfers[0].link_blame = vec![("a".into(), 2.0), ("b".into(), 7.0)];
        r.transfers[1].link_blame = vec![("b".into(), 14.0)];
        let blame = r.link_blame();
        assert_eq!(blame[0], ("a".to_string(), 2.0));
        assert_eq!(blame[1], ("b".to_string(), 21.0));
        assert_eq!(r.top_bottlenecks(1), vec![("b".to_string(), 21.0)]);
    }

    #[test]
    fn json_round_trips_bit_exactly() {
        let art = ProfileArtifact {
            runs: vec![chain_run()],
        };
        let js = art.to_json();
        json::validate(&js).unwrap();
        let back = ProfileArtifact::from_json(&js).unwrap();
        assert_eq!(back, art);
        // Byte-identical re-serialization (the determinism contract).
        assert_eq!(back.to_json(), js);
    }

    #[test]
    fn infinite_times_serialize_as_null() {
        let mut r = chain_run();
        r.transfers[0].ready = f64::INFINITY;
        r.transfers[0].start = f64::INFINITY;
        r.transfers[0].delivered = false;
        let art = ProfileArtifact { runs: vec![r] };
        let js = art.to_json();
        assert!(js.contains("\"ready\": null"), "{js}");
        let back = ProfileArtifact::from_json(&js).unwrap();
        assert!(back.runs[0].transfers[0].ready.is_infinite());
    }

    #[test]
    fn validate_catches_broken_accounting() {
        let mut r = chain_run();
        r.transfers[0].queued = 100.0; // categories no longer sum
        assert!(r.validate().unwrap_err().contains("categories sum"));

        let mut r = chain_run();
        r.transfers[0].deps = vec![9];
        assert!(r.validate().unwrap_err().contains("out of range"));

        let mut r = chain_run();
        r.transfers[0].link_blame = vec![("b".into(), 4.5), ("a".into(), 4.5)];
        assert!(r.validate().unwrap_err().contains("not sorted"));
    }

    #[test]
    fn diff_reports_regressions_only() {
        let art = ProfileArtifact {
            runs: vec![chain_run()],
        };
        assert!(art.diff(&art).is_empty(), "self-diff must be clean");

        let mut changed = art.clone();
        changed.runs[0].end_time = 33.0;
        for t in &mut changed.runs[0].transfers {
            t.link_blame = vec![("l9".into(), 9.0)];
        }
        let lines = changed.diff(&art);
        assert!(lines.iter().any(|l| l.contains("end_time")), "{lines:?}");
        assert!(lines.iter().any(|l| l.contains("new blamed link l9")));
        assert!(lines.iter().any(|l| l.contains("no longer blamed")));

        let empty = ProfileArtifact::default();
        assert!(empty
            .diff(&art)
            .iter()
            .any(|l| l.contains("missing (present in baseline)")));
    }

    #[test]
    fn csv_outputs_are_deterministic() {
        let art = ProfileArtifact {
            runs: vec![chain_run()],
        };
        let csv = art.to_csv();
        assert!(csv.starts_with("run,id,label,bytes,delivered,"));
        assert_eq!(csv.lines().count(), 1 + 4);
        assert_eq!(art.to_csv(), csv);
        let blame = art.blame_csv();
        assert!(blame.contains("direct,l0,"), "{blame}");
    }
}
