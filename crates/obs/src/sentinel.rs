//! The regression sentinel: diff two [`RunManifest`]s into per-metric
//! verdicts, and attribute every regression to the links and time
//! categories that absorbed the lost time.
//!
//! Verdicts are classed per metric name ([`classify`]): simulated-time
//! quantities (makespans, stall totals, queue/latency sums) compare
//! *exactly* — the whole stack is deterministic, so any drift is a real
//! behavior change — while derived ratios (throughput, speedup, win
//! ratio) get a hair of relative tolerance for float-path differences.
//! Direction matters: a larger makespan is a regression, a larger
//! speedup is an improvement, and structural counts (transfer counts,
//! solver run counts, critical-path lengths) are reported as changed
//! but never flip the exit code on their own.
//!
//! Attribution reuses the manifest's profiler rollups: for a scenario
//! with at least one REGRESSED verdict, the sentinel diffs the blame
//! map (`"<run>/<link>"` → seconds) and the `profile.*.cat.*` category
//! sums, and emits the links/categories whose share grew — the
//! "where did the time go" answer next to the "it got slower" verdict.

use crate::ledger::{RunManifest, ScenarioManifest};

/// Whether a larger value of a metric is good, bad, or merely different.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    HigherIsBetter,
    LowerIsBetter,
    /// Informational: drift is reported but is never a regression.
    Neutral,
}

/// The tolerance class a metric name falls in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricClass {
    /// Short label rendered next to the verdict, e.g. `"sim-time"`.
    pub label: &'static str,
    pub direction: Direction,
    /// Relative tolerance; `0.0` means exact comparison.
    pub rel_tol: f64,
}

/// Map a metric name to its tolerance class. First matching rule wins;
/// names the rules don't recognize are informational.
pub fn classify(name: &str) -> MetricClass {
    let has = |pat: &str| name.contains(pat);
    if has("undelivered") {
        MetricClass {
            label: "count",
            direction: Direction::LowerIsBetter,
            rel_tol: 0.0,
        }
    } else if has("delivered") {
        MetricClass {
            label: "count",
            direction: Direction::HigherIsBetter,
            rel_tol: 0.0,
        }
    } else if has("throughput") {
        MetricClass {
            label: "throughput",
            direction: Direction::HigherIsBetter,
            rel_tol: 1e-9,
        }
    } else if has("speedup") || has("win_ratio") || has("reduction") {
        MetricClass {
            label: "ratio",
            direction: Direction::HigherIsBetter,
            rel_tol: 1e-9,
        }
    } else if has("makespan")
        || has("end_time")
        || has("stall")
        || has("discovery")
        || has("queued")
        || has("latency")
        || has("limited")
        || has(".cat.")
    {
        MetricClass {
            label: "sim-time",
            direction: Direction::LowerIsBetter,
            rel_tol: 0.0,
        }
    } else if has("critical_path") || has("transfers") || has("runs") || has("events")
        || has("pairs") || has("links") || has("count")
    {
        MetricClass {
            label: "structure",
            direction: Direction::Neutral,
            rel_tol: 0.0,
        }
    } else {
        MetricClass {
            label: "info",
            direction: Direction::Neutral,
            rel_tol: 0.0,
        }
    }
}

/// Outcome of comparing one metric against the baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    Regressed,
    Improved,
    Neutral,
}

impl Verdict {
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Regressed => "REGRESSED",
            Verdict::Improved => "IMPROVED",
            Verdict::Neutral => "NEUTRAL",
        }
    }
}

/// One metric's comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricVerdict {
    pub name: String,
    pub class: MetricClass,
    pub verdict: Verdict,
    pub current: f64,
    pub baseline: f64,
    /// Whether the value moved at all (NEUTRAL verdicts can still be
    /// changed when the direction is informational).
    pub changed: bool,
}

impl MetricVerdict {
    fn delta_pct(&self) -> f64 {
        if self.baseline.is_finite() && self.baseline != 0.0 && self.current.is_finite() {
            (self.current - self.baseline) / self.baseline * 100.0
        } else {
            f64::NAN
        }
    }

    fn render(&self) -> String {
        let fmtv = |v: f64| {
            if v.is_finite() {
                format!("{v:?}")
            } else {
                "inf".to_string()
            }
        };
        let pct = self.delta_pct();
        let drift = if pct.is_finite() {
            format!(" ({pct:+.3}%)")
        } else {
            String::new()
        };
        format!(
            "{} {} [{}]: {} -> {}{drift}",
            self.verdict.label(),
            self.name,
            self.class.label,
            fmtv(self.baseline),
            fmtv(self.current),
        )
    }
}

/// One scenario's comparison: verdicts, config drift, and — when
/// something regressed — the blame attribution.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScenarioDiff {
    pub name: String,
    /// Config keys whose values differ (or exist on only one side).
    /// Non-empty config drift makes metric verdicts apples-to-oranges;
    /// the report flags it before any verdict.
    pub config_drift: Vec<String>,
    pub verdicts: Vec<MetricVerdict>,
    /// Metric names present only in the baseline (lost coverage — each
    /// is counted as a regression).
    pub removed_metrics: Vec<String>,
    /// Metric names present only in the current manifest.
    pub added_metrics: Vec<String>,
    /// For regressed scenarios: which links/categories absorbed the
    /// lost time, largest increase first.
    pub attribution: Vec<String>,
}

impl ScenarioDiff {
    pub fn regressed(&self) -> bool {
        !self.removed_metrics.is_empty()
            || self.verdicts.iter().any(|v| v.verdict == Verdict::Regressed)
    }

    fn count(&self, v: Verdict) -> usize {
        self.verdicts.iter().filter(|m| m.verdict == v).count()
    }
}

/// The full sentinel comparison of two manifests.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SentinelReport {
    pub scenarios: Vec<ScenarioDiff>,
    /// Scenario names present only in the baseline — lost coverage,
    /// counted as a regression.
    pub removed_scenarios: Vec<String>,
    /// Scenario names present only in the current manifest.
    pub added_scenarios: Vec<String>,
}

impl SentinelReport {
    pub fn has_regressions(&self) -> bool {
        !self.removed_scenarios.is_empty() || self.scenarios.iter().any(ScenarioDiff::regressed)
    }

    /// `(regressed, improved, neutral)` verdict totals.
    pub fn totals(&self) -> (usize, usize, usize) {
        let mut t = (0, 0, 0);
        for s in &self.scenarios {
            t.0 += s.count(Verdict::Regressed) + s.removed_metrics.len();
            t.1 += s.count(Verdict::Improved);
            t.2 += s.count(Verdict::Neutral);
        }
        t.0 += self.removed_scenarios.len();
        t
    }

    /// The human report: per-scenario verdict lines (NEUTRAL rows are
    /// summarized, not listed), config drift, and regression
    /// attribution.
    pub fn render(&self) -> String {
        let (r, i, n) = self.totals();
        let mut out = format!(
            "sentinel: {} scenario(s) compared, {} verdict(s): {r} regressed, {i} improved, {n} neutral\n",
            self.scenarios.len(),
            r + i + n
        );
        for name in &self.removed_scenarios {
            out.push_str(&format!(
                "scenario {name}: REGRESSED — missing from current run (present in baseline)\n"
            ));
        }
        for name in &self.added_scenarios {
            out.push_str(&format!("scenario {name}: new (absent from baseline)\n"));
        }
        for s in &self.scenarios {
            let status = if s.regressed() {
                "REGRESSED"
            } else if s.count(Verdict::Improved) > 0 {
                "IMPROVED"
            } else {
                "NEUTRAL"
            };
            out.push_str(&format!(
                "scenario {}: {status} ({} metric(s))\n",
                s.name,
                s.verdicts.len()
            ));
            for key in &s.config_drift {
                out.push_str(&format!(
                    "  !! config drift on {key:?} — verdicts compare different experiments\n"
                ));
            }
            for m in &s.verdicts {
                if m.verdict != Verdict::Neutral || (m.changed && m.class.direction == Direction::Neutral) {
                    out.push_str(&format!("  {}\n", m.render()));
                }
            }
            for name in &s.removed_metrics {
                out.push_str(&format!("  REGRESSED {name}: metric missing from current run\n"));
            }
            for name in &s.added_metrics {
                out.push_str(&format!("  new metric {name}\n"));
            }
            if !s.attribution.is_empty() {
                out.push_str("  attribution (where the lost time went):\n");
                for line in &s.attribution {
                    out.push_str(&format!("    {line}\n"));
                }
            }
        }
        out
    }

    /// A markdown summary table (one row per scenario) plus the
    /// regression details — the artifact `--markdown-out` writes.
    pub fn to_markdown(&self) -> String {
        let (r, i, n) = self.totals();
        let mut out = String::from("# Sentinel report\n\n");
        out.push_str(&format!(
            "**{r} regressed**, {i} improved, {n} neutral across {} scenario(s).\n\n",
            self.scenarios.len()
        ));
        out.push_str("| scenario | status | regressed | improved | neutral |\n");
        out.push_str("|---|---|---:|---:|---:|\n");
        for name in &self.removed_scenarios {
            out.push_str(&format!("| {name} | missing | — | — | — |\n"));
        }
        for s in &self.scenarios {
            let status = if s.regressed() {
                "**REGRESSED**"
            } else if s.count(Verdict::Improved) > 0 {
                "improved"
            } else {
                "neutral"
            };
            out.push_str(&format!(
                "| {} | {status} | {} | {} | {} |\n",
                s.name,
                s.count(Verdict::Regressed) + s.removed_metrics.len(),
                s.count(Verdict::Improved),
                s.count(Verdict::Neutral)
            ));
        }
        for s in self.scenarios.iter().filter(|s| s.regressed() || s.count(Verdict::Improved) > 0) {
            out.push_str(&format!("\n## {}\n\n", s.name));
            for key in &s.config_drift {
                out.push_str(&format!("- ⚠ config drift on `{key}`\n"));
            }
            for m in &s.verdicts {
                if m.verdict != Verdict::Neutral {
                    out.push_str(&format!("- {}\n", m.render()));
                }
            }
            for name in &s.removed_metrics {
                out.push_str(&format!("- REGRESSED `{name}`: metric missing\n"));
            }
            if !s.attribution.is_empty() {
                out.push_str("\nAttribution:\n\n");
                for line in &s.attribution {
                    out.push_str(&format!("- {line}\n"));
                }
            }
        }
        out
    }
}

fn verdict_for(class: MetricClass, current: f64, baseline: f64) -> (Verdict, bool) {
    // Bit-equality first: catches equal infinities and exact matches.
    if current.to_bits() == baseline.to_bits() {
        return (Verdict::Neutral, false);
    }
    let within_tol = current.is_finite()
        && baseline.is_finite()
        && (current - baseline).abs() <= class.rel_tol * baseline.abs().max(1e-300);
    if within_tol {
        return (Verdict::Neutral, false);
    }
    // Changed beyond tolerance. Infinities order correctly under `>`:
    // a makespan going finite -> inf is "increased".
    let increased = current > baseline;
    let v = match class.direction {
        Direction::Neutral => Verdict::Neutral,
        Direction::HigherIsBetter => {
            if increased {
                Verdict::Improved
            } else {
                Verdict::Regressed
            }
        }
        Direction::LowerIsBetter => {
            if increased {
                Verdict::Regressed
            } else {
                Verdict::Improved
            }
        }
    };
    (v, true)
}

fn fmt_secs(s: f64) -> String {
    if !s.is_finite() {
        "inf".to_string()
    } else if s == 0.0 {
        "0".to_string()
    } else if s.abs() >= 1.0 {
        format!("{s:.3} s")
    } else if s.abs() >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.3} us", s * 1e6)
    }
}

/// Blame-diff attribution for a regressed scenario: the links (from the
/// blame map) and categories (from `profile.*.cat.*` metrics) whose
/// absorbed seconds grew beyond 1% relative (matching the profiler's
/// own drift threshold), largest increase first.
fn attribution(cur: &ScenarioManifest, base: &ScenarioManifest) -> Vec<String> {
    let mut grew: Vec<(f64, String)> = Vec::new();
    let significant = |delta: f64, b: f64| delta > 0.01 * b.abs().max(1e-12);

    let base_blame: std::collections::BTreeMap<&str, f64> =
        base.blame.iter().map(|(l, s)| (l.as_str(), *s)).collect();
    for (label, s) in &cur.blame {
        let b = base_blame.get(label.as_str()).copied().unwrap_or(0.0);
        let delta = s - b;
        if significant(delta, b) {
            let what = if base_blame.contains_key(label.as_str()) {
                format!("link {label} absorbed +{} ({} -> {})", fmt_secs(delta), fmt_secs(b), fmt_secs(*s))
            } else {
                format!("link {label} newly blamed for {}", fmt_secs(*s))
            };
            grew.push((delta, what));
        }
    }
    for (label, b) in &base_blame {
        if !cur.blame.iter().any(|(l, _)| l == label) && *b > 1e-12 {
            grew.push((
                0.0,
                format!("link {label} no longer blamed (released {})", fmt_secs(*b)),
            ));
        }
    }
    for (name, s) in &cur.metrics {
        if !name.contains(".cat.") {
            continue;
        }
        let b = base.metric_value(name).unwrap_or(0.0);
        let delta = s - b;
        if significant(delta, b) {
            grew.push((
                delta,
                format!(
                    "category {} absorbed +{} ({} -> {})",
                    name.trim_start_matches("profile."),
                    fmt_secs(delta),
                    fmt_secs(b),
                    fmt_secs(*s)
                ),
            ));
        }
    }
    grew.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    grew.into_iter().map(|(_, line)| line).collect()
}

fn diff_scenario(cur: &ScenarioManifest, base: &ScenarioManifest) -> ScenarioDiff {
    let mut d = ScenarioDiff {
        name: cur.name.clone(),
        ..Default::default()
    };

    let mut keys: Vec<&str> = cur.config.iter().map(|(k, _)| k.as_str()).collect();
    keys.extend(base.config.iter().map(|(k, _)| k.as_str()));
    keys.sort_unstable();
    keys.dedup();
    for k in keys {
        if cur.config_value(k) != base.config_value(k) {
            d.config_drift.push(k.to_string());
        }
    }

    for (name, &v) in cur.metrics.iter().map(|(k, v)| (k, v)) {
        match base.metric_value(name) {
            Some(b) => {
                let class = classify(name);
                let (verdict, changed) = verdict_for(class, v, b);
                d.verdicts.push(MetricVerdict {
                    name: name.clone(),
                    class,
                    verdict,
                    current: v,
                    baseline: b,
                    changed,
                });
            }
            None => d.added_metrics.push(name.clone()),
        }
    }
    for (name, _) in &base.metrics {
        if cur.metric_value(name).is_none() {
            d.removed_metrics.push(name.clone());
        }
    }

    if d.regressed() {
        d.attribution = attribution(cur, base);
    }
    d
}

/// Diff `current` against `baseline`, scenario by scenario. Scenarios
/// and metrics present only in the baseline count as regressions (lost
/// coverage); new ones are reported but benign.
pub fn diff(current: &RunManifest, baseline: &RunManifest) -> SentinelReport {
    let mut report = SentinelReport::default();
    for b in &baseline.scenarios {
        if current.scenario(&b.name).is_none() {
            report.removed_scenarios.push(b.name.clone());
        }
    }
    for c in &current.scenarios {
        match baseline.scenario(&c.name) {
            Some(b) => report.scenarios.push(diff_scenario(c, b)),
            None => report.added_scenarios.push(c.name.clone()),
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest() -> RunManifest {
        let mut s = ScenarioManifest::new("fig5");
        s.config("nodes", 128);
        s.metric("direct.makespan", 0.125);
        s.metric("direct.throughput", 2.0e9);
        s.metric("speedup", 2.5);
        s.metric("profile.direct.cat.network", 0.1);
        s.metric("profile.direct.transfers", 5.0);
        s.metric("profile.direct.undelivered", 0.0);
        s.blame("direct/n0:+A", 0.08);
        let mut m = RunManifest::default();
        m.push(s);
        m
    }

    #[test]
    fn classes_cover_the_metric_families() {
        assert_eq!(classify("direct.makespan").direction, Direction::LowerIsBetter);
        assert_eq!(classify("direct.makespan").rel_tol, 0.0, "sim-time is exact");
        assert_eq!(classify("agg.throughput").direction, Direction::HigherIsBetter);
        assert_eq!(classify("speedup").direction, Direction::HigherIsBetter);
        assert_eq!(classify("multipath.win_ratio").direction, Direction::HigherIsBetter);
        assert_eq!(classify("profile.direct.undelivered").direction, Direction::LowerIsBetter);
        assert_eq!(classify("profile.x.cat.stalled").direction, Direction::LowerIsBetter);
        assert_eq!(classify("profile.x.critical_path_len").direction, Direction::Neutral);
        assert_eq!(classify("full_run_reduction").direction, Direction::HigherIsBetter);
        assert_eq!(classify("something.else").label, "info");
    }

    #[test]
    fn self_diff_is_all_neutral() {
        let m = manifest();
        let rep = diff(&m, &m);
        assert!(!rep.has_regressions());
        let (r, i, n) = rep.totals();
        assert_eq!((r, i), (0, 0));
        assert_eq!(n, m.scenarios[0].metrics.len());
        assert!(rep.scenarios[0].attribution.is_empty());
        assert!(rep.render().contains("0 regressed"));
    }

    #[test]
    fn slower_makespan_regresses_with_attribution() {
        let base = manifest();
        let mut cur = base.clone();
        {
            let s = &mut cur.scenarios[0];
            s.metric("direct.makespan", 0.25); // slower: regression
            s.metric("direct.throughput", 1.0e9); // lower: regression
            s.metric("profile.direct.cat.network", 0.22);
            s.blame("direct/n0:+A", 0.2); // the link that absorbed it
        }
        let rep = diff(&cur, &base);
        assert!(rep.has_regressions());
        let s = &rep.scenarios[0];
        assert!(s.regressed());
        let makespan = s.verdicts.iter().find(|v| v.name == "direct.makespan").unwrap();
        assert_eq!(makespan.verdict, Verdict::Regressed);
        assert!(
            s.attribution.iter().any(|l| l.contains("direct/n0:+A")),
            "attribution names the link: {:?}",
            s.attribution
        );
        assert!(
            s.attribution.iter().any(|l| l.contains("cat.network")),
            "attribution names the category: {:?}",
            s.attribution
        );
        let text = rep.render();
        assert!(text.contains("REGRESSED direct.makespan"), "{text}");
        assert!(text.contains("attribution"), "{text}");
        let md = rep.to_markdown();
        assert!(md.contains("**REGRESSED**"), "{md}");
        assert!(md.contains("direct/n0:+A"), "{md}");
    }

    #[test]
    fn faster_makespan_improves_without_attribution() {
        let base = manifest();
        let mut cur = base.clone();
        cur.scenarios[0].metric("direct.makespan", 0.1);
        cur.scenarios[0].metric("speedup", 3.0);
        let rep = diff(&cur, &base);
        assert!(!rep.has_regressions());
        let (r, i, _) = rep.totals();
        assert_eq!(r, 0);
        assert_eq!(i, 2);
        assert!(rep.scenarios[0].attribution.is_empty());
    }

    #[test]
    fn structural_drift_is_reported_but_not_regressed() {
        let base = manifest();
        let mut cur = base.clone();
        cur.scenarios[0].metric("profile.direct.transfers", 7.0);
        let rep = diff(&cur, &base);
        assert!(!rep.has_regressions());
        let v = rep.scenarios[0]
            .verdicts
            .iter()
            .find(|v| v.name == "profile.direct.transfers")
            .unwrap();
        assert_eq!(v.verdict, Verdict::Neutral);
        assert!(v.changed);
        assert!(rep.render().contains("profile.direct.transfers"), "changed structure is listed");
    }

    #[test]
    fn undelivered_and_infinite_end_times_regress() {
        let base = manifest();
        let mut cur = base.clone();
        cur.scenarios[0].metric("profile.direct.undelivered", 2.0);
        cur.scenarios[0].metric("direct.makespan", f64::INFINITY);
        let rep = diff(&cur, &base);
        assert!(rep.has_regressions());
        let und = rep.scenarios[0]
            .verdicts
            .iter()
            .find(|v| v.name == "profile.direct.undelivered")
            .unwrap();
        assert_eq!(und.verdict, Verdict::Regressed);
        let mk = rep.scenarios[0]
            .verdicts
            .iter()
            .find(|v| v.name == "direct.makespan")
            .unwrap();
        assert_eq!(mk.verdict, Verdict::Regressed, "finite -> inf is slower");
    }

    #[test]
    fn missing_coverage_is_a_regression() {
        let base = manifest();
        let mut cur = base.clone();
        cur.scenarios[0].metrics.retain(|(k, _)| k != "speedup");
        let rep = diff(&cur, &base);
        assert!(rep.has_regressions());
        assert_eq!(rep.scenarios[0].removed_metrics, vec!["speedup".to_string()]);

        let empty = RunManifest::default();
        let rep = diff(&empty, &base);
        assert!(rep.has_regressions());
        assert_eq!(rep.removed_scenarios, vec!["fig5".to_string()]);
        assert!(rep.render().contains("missing from current run"));

        // New scenarios/metrics are benign.
        let rep = diff(&base, &empty);
        assert!(!rep.has_regressions());
        assert_eq!(rep.added_scenarios, vec!["fig5".to_string()]);
    }

    #[test]
    fn config_drift_is_flagged() {
        let base = manifest();
        let mut cur = base.clone();
        cur.scenarios[0].config("nodes", 256);
        let rep = diff(&cur, &base);
        assert_eq!(rep.scenarios[0].config_drift, vec!["nodes".to_string()]);
        assert!(rep.render().contains("config drift"));
    }

    #[test]
    fn ratio_tolerance_absorbs_float_noise() {
        let base = manifest();
        let mut cur = base.clone();
        let v = base.scenarios[0].metric_value("speedup").unwrap();
        cur.scenarios[0].metric("speedup", v * (1.0 + 1e-12));
        let rep = diff(&cur, &base);
        assert!(!rep.has_regressions());
        let (_, i, _) = rep.totals();
        assert_eq!(i, 0, "sub-tolerance drift is neutral");
    }
}
