//! # bgq-obs
//!
//! The workspace-wide observability layer: a [`MetricsRegistry`] of named
//! counters, gauges and fixed-bucket histograms, and a span/event
//! [`Recorder`] that exports Chrome trace-event JSON loadable in
//! Perfetto or `chrome://tracing`.
//!
//! Everything here is built around one contract, shared with the golden
//! test layer: **artifacts are deterministic**. Counters are unsigned
//! sums (order-independent under any thread interleaving), histograms
//! record integer bucket counts only, trace events carry *simulated*
//! time, and every serializer sorts its output. Two runs of the same
//! experiment — at any `--threads` count — produce byte-identical CSV
//! and JSON. Quantities that cannot meet the contract (wall-clock
//! timings) live under the [`metrics::NON_GOLDEN_PREFIX`] name prefix
//! and are excluded from the deterministic snapshot serializers.
//!
//! The crate has zero dependencies (std only) so it can sit below every
//! other crate in the workspace, and the instruments are cheap enough
//! for hot loops: counters are sharded atomics merged at scrape time.
//!
//! ```
//! use bgq_obs::MetricsRegistry;
//!
//! let reg = MetricsRegistry::new();
//! let planned = reg.counter("planner.multipath_chosen");
//! planned.inc();
//! planned.add(2);
//! let snap = reg.snapshot();
//! assert!(snap.to_csv().contains("counter,planner.multipath_chosen,3"));
//! ```

pub mod json;
pub mod ledger;
pub mod metrics;
pub mod profile;
pub mod sentinel;
pub mod trace;

pub use ledger::{RunManifest, ScenarioManifest, MANIFEST_VERSION};
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry, MetricsSnapshot};
pub use profile::{ProfileArtifact, RunProfile, TransferProfile, PROFILE_VERSION};
pub use sentinel::{MetricVerdict, ScenarioDiff, SentinelReport, Verdict};
pub use trace::Recorder;
