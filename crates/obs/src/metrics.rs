//! Named counters, gauges and fixed-bucket histograms, snapshotable to
//! deterministic sorted CSV/JSON.
//!
//! Instruments are handed out as cheap `Arc` handles; hot loops hoist
//! the handle once and update lock-free. Counters and histogram buckets
//! are *sharded*: each updating thread lands on one of a fixed set of
//! atomic cells (per-thread stripe, merged at scrape), so concurrent
//! increments do not bounce one cache line between cores.
//!
//! Determinism: counter and bucket values are unsigned integer sums, so
//! any interleaving of updates produces the same totals; snapshots
//! iterate a `BTreeMap` (sorted, deduplicated by construction). Gauges
//! hold a single last-written value and are therefore only deterministic
//! when written from deterministic (single-threaded or value-racing-free)
//! code — the workspace uses them for end-of-run facts, not hot paths.
//! Wall-clock quantities must be registered under
//! [`NON_GOLDEN_PREFIX`]; [`MetricsSnapshot::to_csv`] and
//! [`MetricsSnapshot::to_json`] exclude them so golden artifacts never
//! embed nondeterminism ([`MetricsSnapshot::to_csv_all`] keeps them for
//! human inspection).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Name prefix marking metrics that are *not* reproducible across runs
/// (wall-clock timings, host facts). Excluded from golden serializers.
pub const NON_GOLDEN_PREFIX: &str = "wall.";

/// Number of atomic stripes per counter. A small power of two: enough to
/// spread the handful of worker threads an [`ExperimentSession`] uses,
/// cheap to sum at scrape.
///
/// [`ExperimentSession`]: https://docs.rs/bgq-bench
const SHARDS: usize = 8;

/// The calling thread's stripe index, assigned once per thread.
fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
    }
    SHARD.with(|s| *s)
}

#[derive(Default)]
struct Stripes {
    cells: [AtomicU64; SHARDS],
}

impl Stripes {
    fn add(&self, delta: u64) {
        self.cells[shard_index()].fetch_add(delta, Ordering::Relaxed);
    }

    fn sum(&self) -> u64 {
        self.cells.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }
}

/// A monotonically increasing sum. Clone freely; all clones share the
/// same cells.
#[derive(Clone, Default)]
pub struct Counter(Arc<Stripes>);

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, delta: u64) {
        self.0.add(delta);
    }

    /// The merged total across all stripes.
    pub fn value(&self) -> u64 {
        self.0.sum()
    }
}

/// A last-written `f64` value (bit-stored, so NaN round-trips).
#[derive(Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

struct HistogramInner {
    /// Upper bounds of the finite buckets, strictly increasing. An
    /// implicit `+inf` bucket catches the rest.
    bounds: Vec<f64>,
    /// One stripe set per bucket (`bounds.len() + 1` entries).
    buckets: Vec<Stripes>,
}

/// A fixed-bucket histogram of `f64` observations. Only integer bucket
/// counts are kept — no floating-point sum — so the scrape is exact and
/// order-independent.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    fn new(bounds: &[f64]) -> Histogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let mut buckets = Vec::with_capacity(bounds.len() + 1);
        buckets.resize_with(bounds.len() + 1, Stripes::default);
        Histogram(Arc::new(HistogramInner {
            bounds: bounds.to_vec(),
            buckets,
        }))
    }

    pub fn observe(&self, value: f64) {
        let i = self
            .0
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.0.bounds.len());
        self.0.buckets[i].add(1);
    }

    pub fn bounds(&self) -> &[f64] {
        &self.0.bounds
    }

    /// Merged per-bucket counts (`bounds().len() + 1` entries; the last
    /// is the overflow bucket).
    pub fn counts(&self) -> Vec<u64> {
        self.0.buckets.iter().map(|s| s.sum()).collect()
    }

    pub fn count(&self) -> u64 {
        self.0.buckets.iter().map(|s| s.sum()).sum()
    }

    /// Estimate the `q`-quantile (`q` in `[0, 1]`) by linear
    /// interpolation within the bucket containing the target rank — the
    /// standard estimator for log-spaced latency buckets. See
    /// [`quantile_from_buckets`] for the exact semantics and edge cases.
    ///
    /// # Panics
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        quantile_from_buckets(&self.0.bounds, &self.counts(), q)
    }
}

/// Quantile estimate over fixed-bucket histogram data: find the bucket
/// containing rank `q · count` and interpolate linearly inside it.
///
/// Buckets span `(prev bound, bound]`, with the first bucket anchored at
/// 0 (observations are assumed non-negative, which is how the workspace
/// uses histograms — sizes, durations, counts). The overflow bucket has
/// no upper edge, so any quantile landing there reports the last finite
/// bound (a lower bound on the true value). An empty histogram reports
/// `NaN`.
///
/// Everything is computed from integer counts and the fixed bounds, so
/// the estimate is deterministic for a given snapshot.
///
/// # Panics
/// Panics if `q` is outside `[0, 1]`.
pub fn quantile_from_buckets(bounds: &[f64], counts: &[u64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return f64::NAN;
    }
    let target = q * total as f64;
    let mut cum = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let next = cum + c;
        if (next as f64) >= target {
            if i >= bounds.len() {
                // Overflow bucket: no upper edge to interpolate toward.
                return bounds.last().copied().unwrap_or(f64::NAN);
            }
            let lo = if i == 0 { 0.0 } else { bounds[i - 1] };
            let hi = bounds[i];
            let frac = ((target - cum as f64) / c as f64).clamp(0.0, 1.0);
            return lo + frac * (hi - lo);
        }
        cum = next;
    }
    bounds.last().copied().unwrap_or(f64::NAN)
}

/// A registry of named instruments. Lookups take a mutex on a
/// `BTreeMap` — fine for registration and for cold paths; hot loops
/// should hoist the returned handle.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Counter {
        self.counters
            .lock()
            .unwrap()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauges
            .lock()
            .unwrap()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The histogram named `name`, created with `bounds` on first use.
    ///
    /// # Panics
    /// Panics if the name was already registered with different bounds —
    /// two call sites silently disagreeing on buckets would corrupt the
    /// artifact.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        let h = self
            .histograms
            .lock()
            .unwrap()
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .clone();
        assert_eq!(
            h.bounds(),
            bounds,
            "histogram {name:?} re-registered with different bounds"
        );
        h
    }

    /// A point-in-time, merged view of every instrument, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.value()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), (v.bounds().to_vec(), v.counts())))
                .collect(),
        }
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("counters", &self.counters.lock().unwrap().len())
            .field("gauges", &self.gauges.lock().unwrap().len())
            .field("histograms", &self.histograms.lock().unwrap().len())
            .finish()
    }
}

/// A histogram's snapshot payload: `(bucket bounds, per-bucket counts)`.
pub type HistogramData = (Vec<f64>, Vec<u64>);

/// A merged, name-sorted scrape of a [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, total)`, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, last value)`, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// `(name, (bounds, per-bucket counts))`, sorted by name.
    pub histograms: Vec<(String, HistogramData)>,
}

/// Shortest-round-trip float formatting (Rust's `{:?}` for `f64`), which
/// is deterministic for a given bit pattern.
fn fmt_f64(v: f64) -> String {
    format!("{v:?}")
}

/// RFC-4180 CSV field quoting: fields containing a comma, double quote,
/// or line break are wrapped in double quotes with inner quotes doubled;
/// clean fields pass through unchanged (so existing goldens, whose names
/// never need quoting, stay byte-identical).
pub fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

impl MetricsSnapshot {
    /// Counter total by exact name, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .binary_search_by(|(k, _)| k.as_str().cmp(name))
            .ok()
            .map(|i| self.counters[i].1)
    }

    /// The difference `self - earlier` for counters and histogram bucket
    /// counts (gauges keep `self`'s values: they are levels, not sums).
    /// Used to emit per-experiment artifacts from a session-cumulative
    /// registry. Instruments absent from `earlier` pass through whole.
    pub fn delta_from(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let base: BTreeMap<&str, u64> = earlier
            .counters
            .iter()
            .map(|(k, v)| (k.as_str(), *v))
            .collect();
        let hbase: BTreeMap<&str, &Vec<u64>> = earlier
            .histograms
            .iter()
            .map(|(k, (_, c))| (k.as_str(), c))
            .collect();
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, v)| {
                    (k.clone(), v - base.get(k.as_str()).copied().unwrap_or(0))
                })
                .collect(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, (b, c))| {
                    let counts = match hbase.get(k.as_str()) {
                        Some(old) if old.len() == c.len() => {
                            c.iter().zip(old.iter()).map(|(n, o)| n - o).collect()
                        }
                        _ => c.clone(),
                    };
                    (k.clone(), (b.clone(), counts))
                })
                .collect(),
        }
    }

    fn rows(&self, include_non_golden: bool) -> Vec<(&'static str, String, String)> {
        let keep = |name: &str| include_non_golden || !name.starts_with(NON_GOLDEN_PREFIX);
        let mut rows = Vec::new();
        for (name, v) in &self.counters {
            if keep(name) {
                rows.push(("counter", name.clone(), v.to_string()));
            }
        }
        for (name, v) in &self.gauges {
            if keep(name) {
                rows.push(("gauge", name.clone(), fmt_f64(*v)));
            }
        }
        for (name, (bounds, counts)) in &self.histograms {
            if !keep(name) {
                continue;
            }
            for (i, &c) in counts.iter().enumerate() {
                // Zero-padded bucket index keeps rows lexically sorted
                // regardless of how the bound itself formats.
                let le = bounds
                    .get(i)
                    .map(|b| fmt_f64(*b))
                    .unwrap_or_else(|| "inf".to_string());
                rows.push((
                    "histogram",
                    format!("{name}.bucket{i:02}_le_{le}"),
                    c.to_string(),
                ));
            }
            rows.push(("histogram", format!("{name}.count"), counts.iter().sum::<u64>().to_string()));
            // Quantile estimates (deterministic: derived from the bounds
            // and integer counts alone). `pNN` sorts after `bucketNN`
            // and `count`, keeping the row order lexical.
            for (label, q) in [("p50", 0.5), ("p95", 0.95), ("p99", 0.99)] {
                rows.push((
                    "histogram",
                    format!("{name}.{label}"),
                    fmt_f64(quantile_from_buckets(bounds, counts, q)),
                ));
            }
        }
        rows.sort();
        rows
    }

    fn csv(&self, include_non_golden: bool) -> String {
        let mut out = String::from("kind,name,value\n");
        for (kind, name, value) in self.rows(include_non_golden) {
            out.push_str(&format!("{kind},{},{value}\n", csv_field(&name)));
        }
        out
    }

    /// Deterministic CSV: sorted, deduplicated, wall-clock
    /// (`wall.`-prefixed) metrics excluded. Safe to golden-pin.
    pub fn to_csv(&self) -> String {
        self.csv(false)
    }

    /// Like [`MetricsSnapshot::to_csv`] but with the non-golden
    /// (wall-clock) metrics included, for human inspection only.
    pub fn to_csv_all(&self) -> String {
        self.csv(true)
    }

    /// Deterministic JSON object (sorted keys, wall-clock metrics
    /// excluded), for tooling that prefers structure over CSV.
    pub fn to_json(&self) -> String {
        let keep = |name: &str| !name.starts_with(NON_GOLDEN_PREFIX);
        let mut out = String::from("{\n  \"counters\": {");
        let mut first = true;
        for (name, v) in self.counters.iter().filter(|(n, _)| keep(n)) {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\n    {}: {v}", crate::json::escape(name)));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        let mut first = true;
        for (name, v) in self.gauges.iter().filter(|(n, _)| keep(n)) {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\n    {}: {}", crate::json::escape(name), fmt_f64(*v)));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        let mut first = true;
        for (name, (bounds, counts)) in self.histograms.iter().filter(|(n, _)| keep(n)) {
            if !first {
                out.push(',');
            }
            first = false;
            let b: Vec<String> = bounds.iter().map(|v| fmt_f64(*v)).collect();
            let c: Vec<String> = counts.iter().map(|v| v.to_string()).collect();
            // JSON has no NaN/inf literal: empty-histogram quantiles
            // serialize as null.
            let fmt_q = |q: f64| {
                let v = quantile_from_buckets(bounds, counts, q);
                if v.is_finite() {
                    fmt_f64(v)
                } else {
                    "null".to_string()
                }
            };
            out.push_str(&format!(
                "\n    {}: {{\"bounds\": [{}], \"counts\": [{}], \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
                crate::json::escape(name),
                b.join(", "),
                c.join(", "),
                fmt_q(0.5),
                fmt_q(0.95),
                fmt_q(0.99),
            ));
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_threads() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("x");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.value(), 4000);
        assert_eq!(reg.counter("x").value(), 4000, "same name, same cells");
    }

    #[test]
    fn gauge_holds_last_value() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("g");
        g.set(1.5);
        g.set(-2.25);
        assert_eq!(reg.gauge("g").get(), -2.25);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("h", &[1.0, 10.0]);
        for v in [0.5, 1.0, 5.0, 100.0] {
            h.observe(v);
        }
        assert_eq!(h.counts(), vec![2, 1, 1]);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn quantile_interpolates_within_buckets() {
        let reg = MetricsRegistry::new();
        // Log-spaced bounds, 100 observations spread 50/30/20 across
        // (0,1], (1,10], (10,100].
        let h = reg.histogram("q", &[1.0, 10.0, 100.0]);
        for _ in 0..50 {
            h.observe(0.5);
        }
        for _ in 0..30 {
            h.observe(5.0);
        }
        for _ in 0..20 {
            h.observe(50.0);
        }
        // p50: rank 50 is exactly the top of bucket 0 -> 1.0.
        assert!((h.quantile(0.5) - 1.0).abs() < 1e-12, "{}", h.quantile(0.5));
        // p80: rank 80 tops bucket 1 -> 10.0.
        assert!((h.quantile(0.8) - 10.0).abs() < 1e-12);
        // p90: halfway through bucket 2 -> 10 + 0.5*90 = 55.
        assert!((h.quantile(0.9) - 55.0).abs() < 1e-9, "{}", h.quantile(0.9));
        // Extremes.
        assert!((h.quantile(0.0) - 0.0).abs() < 1e-12);
        assert!((h.quantile(1.0) - 100.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_edge_cases() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("e", &[1.0, 10.0]);
        assert!(h.quantile(0.5).is_nan(), "empty histogram has no quantile");
        // Everything in the overflow bucket: report the last finite bound.
        h.observe(1e9);
        assert_eq!(h.quantile(0.5), 10.0);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn quantile_rejects_out_of_range_q() {
        let reg = MetricsRegistry::new();
        reg.histogram("h", &[1.0]).quantile(1.5);
    }

    #[test]
    fn snapshot_includes_quantile_rows() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat", &[1.0, 10.0]);
        for _ in 0..10 {
            h.observe(0.5);
        }
        let snap = reg.snapshot();
        let csv = snap.to_csv();
        assert!(csv.contains("histogram,lat.p50,0.5"), "{csv}");
        assert!(csv.contains("histogram,lat.p95,0.95"), "{csv}");
        assert!(csv.contains("histogram,lat.p99,0.99"), "{csv}");
        let json = snap.to_json();
        assert!(json.contains("\"p50\": 0.5"), "{json}");
        crate::json::validate(&json).unwrap();
        // Empty histograms must still emit valid JSON (null quantiles).
        let reg2 = MetricsRegistry::new();
        reg2.histogram("empty", &[1.0]);
        let j = reg2.snapshot().to_json();
        assert!(j.contains("\"p50\": null"), "{j}");
        crate::json::validate(&j).unwrap();
    }

    #[test]
    #[should_panic(expected = "different bounds")]
    fn histogram_bounds_must_agree() {
        let reg = MetricsRegistry::new();
        reg.histogram("h", &[1.0]);
        reg.histogram("h", &[2.0]);
    }

    #[test]
    fn snapshot_csv_is_sorted_and_deduplicated() {
        let reg = MetricsRegistry::new();
        reg.counter("z.last").add(2);
        reg.counter("a.first").inc();
        reg.counter("z.last").inc(); // same instrument, not a new row
        reg.gauge("m.level").set(3.0);
        let csv = reg.snapshot().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "kind,name,value");
        let mut sorted = lines[1..].to_vec();
        sorted.sort();
        assert_eq!(lines[1..], sorted[..], "rows must come out sorted");
        assert_eq!(
            lines.iter().filter(|l| l.contains("z.last")).count(),
            1,
            "one row per instrument"
        );
        assert!(csv.contains("counter,z.last,3"));
        assert!(csv.contains("gauge,m.level,3.0"));
    }

    #[test]
    fn wall_clock_metrics_are_excluded_from_golden_output() {
        let reg = MetricsRegistry::new();
        reg.counter("wall.point_ms_total").add(123);
        reg.counter("sim.events").add(7);
        let snap = reg.snapshot();
        assert!(!snap.to_csv().contains("wall."));
        assert!(!snap.to_json().contains("wall."));
        assert!(snap.to_csv_all().contains("counter,wall.point_ms_total,123"));
    }

    #[test]
    fn delta_subtracts_counters_and_buckets() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("c");
        let h = reg.histogram("h", &[10.0]);
        c.add(5);
        h.observe(1.0);
        let before = reg.snapshot();
        c.add(3);
        h.observe(100.0);
        let d = reg.snapshot().delta_from(&before);
        assert_eq!(d.counter("c"), Some(3));
        assert_eq!(d.histograms[0].1 .1, vec![0, 1]);
    }

    #[test]
    fn csv_quotes_labels_with_commas_and_quotes() {
        assert_eq!(csv_field("plain.name"), "plain.name");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_field("line\nbreak"), "\"line\nbreak\"");

        let reg = MetricsRegistry::new();
        reg.counter("link{x,y}.stalls").add(3);
        reg.gauge("label with \"quotes\"").set(1.0);
        let csv = reg.snapshot().to_csv();
        assert!(
            csv.contains("counter,\"link{x,y}.stalls\",3"),
            "comma-bearing name must be quoted: {csv}"
        );
        assert!(
            csv.contains("gauge,\"label with \"\"quotes\"\"\",1.0"),
            "quote-bearing name must be escaped: {csv}"
        );
        // Clean names stay unquoted so golden CSVs are unchanged.
        reg.counter("clean.name").inc();
        assert!(reg.snapshot().to_csv().contains("counter,clean.name,1"));
    }

    #[test]
    fn snapshot_json_parses() {
        let reg = MetricsRegistry::new();
        reg.counter("a\"quoted\"").inc();
        reg.gauge("g").set(0.5);
        reg.histogram("h", &[1.0]).observe(2.0);
        crate::json::validate(&reg.snapshot().to_json()).expect("snapshot JSON must parse");
    }
}
