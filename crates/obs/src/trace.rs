//! A span/event recorder keyed on **simulated time**, exporting Chrome
//! trace-event JSON (the format Perfetto and `chrome://tracing` load).
//!
//! Because timestamps come from the simulation clock — never the wall
//! clock — and the exporter totally orders events and tracks before
//! serializing, the JSON is byte-identical no matter how many worker
//! threads produced the events or in what order they arrived.
//!
//! Mapping onto the Chrome model: the whole run is one process
//! (`pid 1`); each named *track* becomes one thread row (`tid` assigned
//! by sorted track name, announced with `thread_name` metadata events).
//! Spans are complete events (`ph:"X"`), instants are `ph:"i"`, and
//! numeric time series (e.g. bytes-in-flight per link axis) are counter
//! events (`ph:"C"`), which Perfetto renders as a little area chart.

use crate::json::escape;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Microseconds, formatted with fixed precision so equal inputs yield
/// equal bytes.
fn us(seconds: f64) -> String {
    format!("{:.3}", seconds * 1e6)
}

#[derive(Debug, Clone, PartialEq)]
enum Kind {
    /// Complete event: duration in seconds.
    Span { dur: f64 },
    /// Instant event.
    Instant,
    /// Counter sample: series name -> value.
    Counter { value: f64 },
}

#[derive(Debug, Clone, PartialEq)]
struct Event {
    track: String,
    name: String,
    /// Simulated start time, seconds.
    ts: f64,
    kind: Kind,
    /// Extra `args` key/values (shown in the Perfetto detail pane).
    args: Vec<(String, String)>,
}

/// Collects simulated-time spans, instants and counter samples; exports
/// them as Chrome trace-event JSON.
///
/// ```
/// use bgq_obs::Recorder;
///
/// let rec = Recorder::new();
/// rec.span("axis +B", "chunk n0->n2", 0.0, 1.5e-3, &[("bytes", "1048576".into())]);
/// rec.instant("faults", "link down", 1.0e-3);
/// rec.counter("axis +B", "bytes_in_flight", 0.0, 1048576.0);
/// let json = rec.to_chrome_json();
/// bgq_obs::json::validate(&json).unwrap();
/// ```
#[derive(Debug, Default)]
pub struct Recorder {
    events: Mutex<Vec<Event>>,
}

impl Recorder {
    pub fn new() -> Recorder {
        Recorder::default()
    }

    /// Record a complete span on `track` over `[start, end]` simulated
    /// seconds. `args` are extra detail-pane fields (values rendered as
    /// JSON strings).
    pub fn span(&self, track: &str, name: &str, start: f64, end: f64, args: &[(&str, String)]) {
        self.push(Event {
            track: track.to_string(),
            name: name.to_string(),
            ts: start,
            kind: Kind::Span {
                dur: (end - start).max(0.0),
            },
            args: own(args),
        });
    }

    /// Record an instantaneous event at simulated time `t`.
    pub fn instant(&self, track: &str, name: &str, t: f64) {
        self.push(Event {
            track: track.to_string(),
            name: name.to_string(),
            ts: t,
            kind: Kind::Instant,
            args: Vec::new(),
        });
    }

    /// Record one sample of the counter series `name` on `track`.
    pub fn counter(&self, track: &str, name: &str, t: f64, value: f64) {
        self.push(Event {
            track: track.to_string(),
            name: name.to_string(),
            ts: t,
            kind: Kind::Counter { value },
            args: Vec::new(),
        });
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy every event of `other` into `self` with `prefix` prepended
    /// to its track name — how independent runs (e.g. a direct and a
    /// multipath execution of the same figure) share one timeline.
    pub fn merge_prefixed(&self, other: &Recorder, prefix: &str) {
        let mut mine = self.events.lock().unwrap();
        for e in other.events.lock().unwrap().iter() {
            let mut e = e.clone();
            e.track = format!("{prefix}{}", e.track);
            mine.push(e);
        }
    }

    fn push(&self, e: Event) {
        debug_assert!(e.ts.is_finite(), "trace events carry finite simulated time");
        self.events.lock().unwrap().push(e);
    }

    /// Serialize to Chrome trace-event JSON. Events are totally ordered
    /// (timestamp, track, name, payload) and tracks get stable `tid`s
    /// from their sorted names, so the bytes are reproducible regardless
    /// of recording order.
    pub fn to_chrome_json(&self) -> String {
        let mut events = self.events.lock().unwrap().clone();
        events.sort_by(|a, b| {
            a.ts.total_cmp(&b.ts)
                .then_with(|| a.track.cmp(&b.track))
                .then_with(|| a.name.cmp(&b.name))
                .then_with(|| format!("{:?}", a.kind).cmp(&format!("{:?}", b.kind)))
                .then_with(|| a.args.cmp(&b.args))
        });

        // Stable tids: sorted unique track names, numbered from 1.
        let mut tids: BTreeMap<&str, usize> = BTreeMap::new();
        for e in &events {
            let next = tids.len() + 1;
            tids.entry(e.track.as_str()).or_insert(next);
        }
        // BTreeMap iteration re-numbers in sorted order.
        let tids: BTreeMap<String, usize> = tids
            .keys()
            .enumerate()
            .map(|(i, k)| (k.to_string(), i + 1))
            .collect();

        let mut out = String::from("{\"traceEvents\":[\n");
        let mut first = true;
        let mut emit = |line: String, first: &mut bool| {
            if !*first {
                out.push_str(",\n");
            }
            *first = false;
            out.push_str(&line);
        };
        for (track, tid) in &tids {
            emit(
                format!(
                    "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\
                     \"args\":{{\"name\":{}}}}}",
                    escape(track)
                ),
                &mut first,
            );
        }
        for e in &events {
            let tid = tids[&e.track];
            let ts = us(e.ts);
            let line = match &e.kind {
                Kind::Span { dur } => format!(
                    "{{\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"ts\":{ts},\"dur\":{},\
                     \"name\":{},\"args\":{{{}}}}}",
                    us(*dur),
                    escape(&e.name),
                    args_json(&e.args)
                ),
                Kind::Instant => format!(
                    "{{\"ph\":\"i\",\"pid\":1,\"tid\":{tid},\"ts\":{ts},\"s\":\"t\",\
                     \"name\":{}}}",
                    escape(&e.name)
                ),
                Kind::Counter { value } => format!(
                    "{{\"ph\":\"C\",\"pid\":1,\"tid\":{tid},\"ts\":{ts},\"name\":{},\
                     \"args\":{{{}: {:?}}}}}",
                    escape(&e.name),
                    escape(&e.name),
                    value
                ),
            };
            emit(line, &mut first);
        }
        out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        out
    }
}

fn own(args: &[(&str, String)]) -> Vec<(String, String)> {
    args.iter()
        .map(|(k, v)| (k.to_string(), v.clone()))
        .collect()
}

fn args_json(args: &[(String, String)]) -> String {
    args.iter()
        .map(|(k, v)| format!("{}: {}", escape(k), escape(v)))
        .collect::<Vec<_>>()
        .join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(rec: &Recorder) {
        rec.span("axis +B", "chunk 1", 0.0, 2.0e-3, &[("bytes", "42".into())]);
        rec.span("axis +C", "chunk 2", 1.0e-3, 3.0e-3, &[]);
        rec.instant("faults", "link down", 1.5e-3);
        rec.counter("axis +B", "bytes_in_flight", 0.0, 42.0);
    }

    #[test]
    fn export_is_order_independent() {
        let a = Recorder::new();
        sample(&a);
        let b = Recorder::new();
        // Same events, recorded in a different order.
        b.counter("axis +B", "bytes_in_flight", 0.0, 42.0);
        b.instant("faults", "link down", 1.5e-3);
        b.span("axis +C", "chunk 2", 1.0e-3, 3.0e-3, &[]);
        b.span("axis +B", "chunk 1", 0.0, 2.0e-3, &[("bytes", "42".into())]);
        assert_eq!(a.to_chrome_json(), b.to_chrome_json());
    }

    #[test]
    fn export_is_valid_json_with_expected_phases() {
        let rec = Recorder::new();
        sample(&rec);
        let json = rec.to_chrome_json();
        crate::json::validate(&json).expect("chrome trace must be valid JSON");
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"thread_name\""));
        // Simulated seconds land in the file as microseconds.
        assert!(json.contains("\"ts\":2000.000") || json.contains("\"dur\":2000.000"));
    }

    #[test]
    fn merge_prefixed_separates_timelines() {
        let direct = Recorder::new();
        direct.span("axis +B", "put", 0.0, 1.0, &[]);
        let all = Recorder::new();
        all.merge_prefixed(&direct, "direct/");
        let json = all.to_chrome_json();
        assert!(json.contains("direct/axis +B"));
        assert_eq!(all.len(), 1);
    }

    #[test]
    fn negative_durations_are_clamped() {
        let rec = Recorder::new();
        rec.span("t", "backwards", 2.0, 1.0, &[]);
        assert!(rec.to_chrome_json().contains("\"dur\":0.000"));
    }
}
