//! Minimal JSON utilities: string escaping for the serializers and a
//! syntax validator for the artifacts they emit.
//!
//! The workspace vendors no serde; the emitters in this crate build
//! JSON by construction, and [`validate`] gives tests and the
//! `obs_report` tool an independent check that what was written actually
//! parses (RFC 8259 grammar — structure only, no value model).

/// Escape `s` as a JSON string literal, double quotes included.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Check that `input` is one well-formed JSON value. Returns the byte
/// offset and a short description on failure.
pub fn validate(input: &str) -> Result<(), String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after the top-level value"));
    }
    Ok(())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("byte {}: {msg}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected {lit}")))
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.pos += 1,
                                    _ => return Err(self.err("bad \\u escape")),
                                }
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control char in string")),
                Some(_) => self.pos += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| {
            let start = p.pos;
            while matches!(p.peek(), Some(c) if c.is_ascii_digit()) {
                p.pos += 1;
            }
            p.pos > start
        };
        if !digits(self) {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(self.err("expected exponent digits"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_well_formed_documents() {
        for ok in [
            "{}",
            "[]",
            "null",
            "-1.5e-3",
            r#"{"a": [1, 2.0, "x\n", true, null], "b": {"c": []}}"#,
        ] {
            validate(ok).unwrap_or_else(|e| panic!("{ok}: {e}"));
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "1 2", "\"\\x\"", "01x"] {
            assert!(validate(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn escape_round_trips_through_validate() {
        let s = escape("a\"b\\c\n\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\n\\u0001\"");
        validate(&s).unwrap();
    }
}
