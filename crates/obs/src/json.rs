//! Minimal JSON utilities: string escaping for the serializers, a
//! syntax validator, and a small value-tree parser for the artifacts
//! they emit.
//!
//! The workspace vendors no serde; the emitters in this crate build
//! JSON by construction, [`validate`] gives tests and the `obs_report`
//! tool an independent check that what was written actually parses
//! (RFC 8259 grammar), and [`parse`] returns a [`Value`] tree so
//! artifact readers (profile diffing, regression checks) can consume
//! their own output without a dependency.

/// Escape `s` as a JSON string literal, double quotes included.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A parsed JSON value. Object members keep document order (the
/// emitters in this crate write sorted keys, so order is meaningful and
/// round-trips).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// All JSON numbers parse as `f64` (the only numeric type the
    /// workspace emits). Rust's parser is correctly rounded, and the
    /// emitters use shortest-round-trip formatting, so bit patterns
    /// survive a write/read cycle.
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member of an object by key (first match in document order).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }
}

/// Parse `input` as one well-formed JSON value. Returns the byte offset
/// and a short description on failure.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after the top-level value"));
    }
    Ok(v)
}

/// Check that `input` is one well-formed JSON value. Returns the byte
/// offset and a short description on failure.
pub fn validate(input: &str) -> Result<(), String> {
    parse(input).map(|_| ())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("byte {}: {msg}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.literal("true").map(|_| Value::Bool(true)),
            Some(b'f') => self.literal("false").map(|_| Value::Bool(false)),
            Some(b'n') => self.literal("null").map(|_| Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected {lit}")))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        self.skip_ws();
        let mut members = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        self.skip_ws();
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => {
                            out.push('"');
                            self.pos += 1;
                        }
                        Some(b'\\') => {
                            out.push('\\');
                            self.pos += 1;
                        }
                        Some(b'/') => {
                            out.push('/');
                            self.pos += 1;
                        }
                        Some(b'b') => {
                            out.push('\u{8}');
                            self.pos += 1;
                        }
                        Some(b'f') => {
                            out.push('\u{c}');
                            self.pos += 1;
                        }
                        Some(b'n') => {
                            out.push('\n');
                            self.pos += 1;
                        }
                        Some(b'r') => {
                            out.push('\r');
                            self.pos += 1;
                        }
                        Some(b't') => {
                            out.push('\t');
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            let mut code: u32 = 0;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => {
                                        code = code * 16 + (c as char).to_digit(16).unwrap();
                                        self.pos += 1;
                                    }
                                    _ => return Err(self.err("bad \\u escape")),
                                }
                            }
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes[self.pos..].first() == Some(&b'\\')
                                    && self.bytes[self.pos + 1..].first() == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let mut low: u32 = 0;
                                    for _ in 0..4 {
                                        match self.peek() {
                                            Some(c) if c.is_ascii_hexdigit() => {
                                                low = low * 16
                                                    + (c as char).to_digit(16).unwrap();
                                                self.pos += 1;
                                            }
                                            _ => return Err(self.err("bad \\u escape")),
                                        }
                                    }
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.err("unpaired surrogate"));
                                    }
                                    0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&code) {
                                return Err(self.err("unpaired surrogate"));
                            } else {
                                code
                            };
                            out.push(
                                char::from_u32(c)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control char in string")),
                Some(_) => {
                    // Advance one whole UTF-8 scalar (input is &str, so
                    // boundaries are valid by construction).
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|b| (b & 0xC0) == 0x80)
                    {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| {
            let start = p.pos;
            while matches!(p.peek(), Some(c) if c.is_ascii_digit()) {
                p.pos += 1;
            }
            p.pos > start
        };
        if !digits(self) {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(self.err("expected exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("number out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_well_formed_documents() {
        for ok in [
            "{}",
            "[]",
            "null",
            "-1.5e-3",
            r#"{"a": [1, 2.0, "x\n", true, null], "b": {"c": []}}"#,
        ] {
            validate(ok).unwrap_or_else(|e| panic!("{ok}: {e}"));
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "1 2", "\"\\x\"", "01x"] {
            assert!(validate(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn escape_round_trips_through_validate() {
        let s = escape("a\"b\\c\n\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\n\\u0001\"");
        validate(&s).unwrap();
    }

    #[test]
    fn parse_builds_the_value_tree() {
        let v = parse(r#"{"a": [1, -2.5e1], "b": "x\ty", "c": true, "d": null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_f64(), Some(1.0));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(-25.0));
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\ty"));
        assert_eq!(v.get("c").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("d"), Some(&Value::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parse_round_trips_escapes_and_floats() {
        let original = "a\"b\\c\nd\u{1}e";
        let v = parse(&escape(original)).unwrap();
        assert_eq!(v.as_str(), Some(original));
        // Shortest-round-trip emission parses back to the same bits.
        for f in [0.1f64, 1.0 / 3.0, 1e-300, 123456789.123456] {
            let v = parse(&format!("{f:?}")).unwrap();
            assert_eq!(v.as_f64().unwrap().to_bits(), f.to_bits());
        }
    }

    #[test]
    fn parse_handles_surrogate_pairs() {
        let v = parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str(), Some("😀"));
        assert!(parse("\"\\ud83d\"").is_err(), "unpaired high surrogate");
        assert!(parse("\"\\ude00\"").is_err(), "unpaired low surrogate");
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
    }
}
