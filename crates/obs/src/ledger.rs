//! The performance run-ledger: a [`RunManifest`] bundling, per
//! scenario, a config fingerprint, extracted scalar metrics, and
//! profiler blame rollups — the unit the regression sentinel
//! ([`crate::sentinel`]) diffs across runs.
//!
//! A manifest is the semantic counterpart of the raw `BENCH_*.json`
//! artifacts: instead of byte-diffing whole sweeps, it pins the handful
//! of scalars the paper's argument rests on (aggregate throughput,
//! speedup ratios, stall totals, waterfill solve counts, exchange win
//! ratios) next to the profiler's per-link blame, so a diff can say not
//! only *that* a delta eroded but *which links absorbed the lost time*.
//!
//! Manifests inherit the workspace artifact contract: every serialized
//! value is simulated time or an integer count, keys are sorted, floats
//! use shortest-round-trip formatting (non-finite as `null`, restored
//! as `INFINITY` on parse), and metrics under the
//! [`crate::metrics::NON_GOLDEN_PREFIX`] (`wall.`) name prefix are
//! *excluded* from serialization — so two identical runs produce
//! byte-identical files and [`RunManifest::from_json`] restores the
//! exact float bits [`RunManifest::to_json`] wrote.

use crate::json::{self, Value};
use crate::metrics::NON_GOLDEN_PREFIX;
use crate::profile::ProfileArtifact;

/// Manifest schema version (`"bgq_manifest"` top-level key).
pub const MANIFEST_VERSION: u64 = 1;

/// One scenario's ledger entry: what was run (config), what came out
/// (metrics), and where the time went (blame).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScenarioManifest {
    /// Scenario name, e.g. `"fig5"` or `"exchange"`.
    pub name: String,
    /// Config fingerprint `(key, value)`, sorted by key, unique —
    /// topology, sizes, seeds, policy, simulator constants. Two
    /// manifests are only comparable metric-by-metric where their
    /// configs agree; the sentinel reports config drift loudly.
    pub config: Vec<(String, String)>,
    /// Extracted scalar metrics `(name, value)`, sorted by name,
    /// unique. Names under `wall.` are kept in memory but never
    /// serialized (wall-clock is not reproducible).
    pub metrics: Vec<(String, f64)>,
    /// Profiler blame rollup `(label, seconds)`, sorted by label,
    /// unique. Labels are `"<run>/<link>"` so one scenario can carry
    /// several profiled runs' bottleneck links side by side.
    pub blame: Vec<(String, f64)>,
}

/// Insert `(key, value)` into a sorted-unique vec, replacing on match.
fn upsert<T>(v: &mut Vec<(String, T)>, key: &str, value: T) {
    match v.binary_search_by(|(k, _)| k.as_str().cmp(key)) {
        Ok(i) => v[i].1 = value,
        Err(i) => v.insert(i, (key.to_string(), value)),
    }
}

fn lookup<'a, T>(v: &'a [(String, T)], key: &str) -> Option<&'a T> {
    v.binary_search_by(|(k, _)| k.as_str().cmp(key))
        .ok()
        .map(|i| &v[i].1)
}

fn check_sorted<T>(v: &[(String, T)], what: &str, scenario: &str) -> Result<(), String> {
    for w in v.windows(2) {
        if w[0].0 >= w[1].0 {
            return Err(format!(
                "scenario {scenario:?}: {what} keys not sorted/unique: {:?} then {:?}",
                w[0].0, w[1].0
            ));
        }
    }
    Ok(())
}

impl ScenarioManifest {
    pub fn new(name: &str) -> ScenarioManifest {
        ScenarioManifest {
            name: name.to_string(),
            ..Default::default()
        }
    }

    /// Record one config fact (replaces on duplicate key).
    pub fn config(&mut self, key: &str, value: impl ToString) {
        upsert(&mut self.config, key, value.to_string());
    }

    /// Record one scalar metric (replaces on duplicate name).
    pub fn metric(&mut self, name: &str, value: f64) {
        upsert(&mut self.metrics, name, value);
    }

    /// Record one blame entry (replaces on duplicate label).
    pub fn blame(&mut self, label: &str, seconds: f64) {
        upsert(&mut self.blame, label, seconds);
    }

    /// Metric value by exact name.
    pub fn metric_value(&self, name: &str) -> Option<f64> {
        lookup(&self.metrics, name).copied()
    }

    /// Config value by exact key.
    pub fn config_value(&self, key: &str) -> Option<&str> {
        lookup(&self.config, key).map(String::as_str)
    }

    /// Fold a profile artifact into this scenario: per run, the
    /// end time, transfer/undelivered counts, critical-path length,
    /// category rollups (under `profile.<run>.cat.*`), and the top-`k`
    /// most-blamed links as `"<run>/<link>"` blame entries.
    pub fn attach_profile(&mut self, art: &ProfileArtifact, top_k: usize) {
        for run in &art.runs {
            let p = |suffix: &str| format!("profile.{}.{suffix}", run.name);
            self.metric(&p("end_time"), run.end_time);
            self.metric(&p("transfers"), run.transfers.len() as f64);
            self.metric(
                &p("undelivered"),
                run.transfers.iter().filter(|t| !t.delivered).count() as f64,
            );
            self.metric(&p("critical_path_len"), run.critical_path().len() as f64);
            let sum = |f: fn(&crate::profile::TransferProfile) -> f64| -> f64 {
                run.transfers.iter().fold(0.0, |a, t| a + f(t))
            };
            self.metric(&p("cat.queued"), sum(|t| t.queued));
            self.metric(&p("cat.network"), run.total_network_limited());
            self.metric(&p("cat.cap"), sum(|t| t.cap_limited));
            self.metric(&p("cat.stalled"), sum(|t| t.stalled));
            self.metric(&p("cat.latency"), sum(|t| t.latency));
            for (link, secs) in run.top_bottlenecks(top_k) {
                self.blame(&format!("{}/{link}", run.name), secs);
            }
        }
    }

    /// Structural invariants: sorted-unique keys in all three maps.
    pub fn validate(&self) -> Result<(), String> {
        check_sorted(&self.config, "config", &self.name)?;
        check_sorted(&self.metrics, "metrics", &self.name)?;
        check_sorted(&self.blame, "blame", &self.name)
    }
}

/// A full ledger entry: every scenario of one bench run, sorted by
/// scenario name.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunManifest {
    pub scenarios: Vec<ScenarioManifest>,
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

impl RunManifest {
    /// Scenario by name.
    pub fn scenario(&self, name: &str) -> Option<&ScenarioManifest> {
        self.scenarios.iter().find(|s| s.name == name)
    }

    /// Insert a scenario, keeping the list sorted by name (replaces an
    /// existing scenario of the same name).
    pub fn push(&mut self, s: ScenarioManifest) {
        match self
            .scenarios
            .binary_search_by(|x| x.name.as_str().cmp(&s.name))
        {
            Ok(i) => self.scenarios[i] = s,
            Err(i) => self.scenarios.insert(i, s),
        }
    }

    /// Validate every scenario and the scenario ordering itself.
    pub fn validate(&self) -> Result<(), String> {
        for w in self.scenarios.windows(2) {
            if w[0].name >= w[1].name {
                return Err(format!(
                    "scenarios not sorted/unique: {:?} then {:?}",
                    w[0].name, w[1].name
                ));
            }
        }
        for s in &self.scenarios {
            s.validate()?;
        }
        Ok(())
    }

    /// A copy with every `wall.`-prefixed metric dropped — exactly what
    /// [`to_json`](Self::to_json) serializes, so
    /// `from_json(to_json(m))` equals `m.without_wall()`.
    pub fn without_wall(&self) -> RunManifest {
        let mut out = self.clone();
        for s in &mut out.scenarios {
            s.metrics.retain(|(k, _)| !k.starts_with(NON_GOLDEN_PREFIX));
        }
        out
    }

    /// Deterministic JSON: sorted scenarios and keys, fixed key order,
    /// shortest-round-trip floats, non-finite values as `null`,
    /// `wall.`-prefixed metrics excluded.
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\n  \"bgq_manifest\": {MANIFEST_VERSION},\n  \"scenarios\": [");
        for (si, s) in self.scenarios.iter().enumerate() {
            if si > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\n      \"name\": {},\n      \"config\": {{",
                json::escape(&s.name)
            ));
            for (i, (k, v)) in s.config.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "\n        {}: {}",
                    json::escape(k),
                    json::escape(v)
                ));
            }
            out.push_str("\n      },\n      \"metrics\": {");
            let golden: Vec<&(String, f64)> = s
                .metrics
                .iter()
                .filter(|(k, _)| !k.starts_with(NON_GOLDEN_PREFIX))
                .collect();
            for (i, (k, v)) in golden.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\n        {}: {}", json::escape(k), json_f64(*v)));
            }
            out.push_str("\n      },\n      \"blame\": {");
            for (i, (k, v)) in s.blame.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\n        {}: {}", json::escape(k), json_f64(*v)));
            }
            out.push_str("\n      }\n    }");
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parse a manifest previously written by [`to_json`](Self::to_json).
    /// Floats restore bit-exactly; `null` restores as `INFINITY`
    /// (matching the profile artifact convention).
    pub fn from_json(input: &str) -> Result<RunManifest, String> {
        let v = json::parse(input)?;
        let version = v
            .get("bgq_manifest")
            .and_then(Value::as_u64)
            .ok_or("missing \"bgq_manifest\" version key")?;
        if version != MANIFEST_VERSION {
            return Err(format!(
                "manifest version {version} unsupported (expected {MANIFEST_VERSION})"
            ));
        }
        let scenarios = v
            .get("scenarios")
            .and_then(Value::as_arr)
            .ok_or("missing \"scenarios\" array")?;
        let mut out = RunManifest::default();
        for (si, sv) in scenarios.iter().enumerate() {
            let name = sv
                .get("name")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("scenario {si}: missing name"))?
                .to_string();
            let obj = |key: &str| -> Result<&[(String, Value)], String> {
                match sv.get(key) {
                    Some(Value::Obj(members)) => Ok(members),
                    _ => Err(format!("scenario {name:?}: missing {key:?} object")),
                }
            };
            let mut s = ScenarioManifest::new(&name);
            for (k, val) in obj("config")? {
                let v = val
                    .as_str()
                    .ok_or_else(|| format!("scenario {name:?}: config {k:?} not a string"))?;
                s.config.push((k.clone(), v.to_string()));
            }
            for (k, val) in obj("metrics")? {
                let v = match val {
                    Value::Null => f64::INFINITY,
                    v => v
                        .as_f64()
                        .ok_or_else(|| format!("scenario {name:?}: metric {k:?} not a number"))?,
                };
                s.metrics.push((k.clone(), v));
            }
            for (k, val) in obj("blame")? {
                let v = match val {
                    Value::Null => f64::INFINITY,
                    v => v
                        .as_f64()
                        .ok_or_else(|| format!("scenario {name:?}: blame {k:?} not a number"))?,
                };
                s.blame.push((k.clone(), v));
            }
            out.scenarios.push(s);
        }
        out.validate()?;
        Ok(out)
    }

    /// FNV-1a 64-bit hash of the serialized manifest, as 16 hex digits.
    /// The key the run history (`history.jsonl`) is deduplicated on: a
    /// re-run with identical results hashes identically.
    pub fn fingerprint(&self) -> String {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.to_json().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        format!("{h:016x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{RunProfile, TransferProfile};

    fn sample() -> RunManifest {
        let mut s = ScenarioManifest::new("fig5");
        s.config("nodes", 128);
        s.config("bytes", 33554432u64);
        s.metric("speedup", 2.5);
        s.metric("direct.makespan", 0.125);
        s.metric("wall.secs", 1.5);
        s.blame("direct/n0:+A", 0.75);
        let mut m = RunManifest::default();
        m.push(s);
        m
    }

    #[test]
    fn maps_stay_sorted_and_replace_on_duplicate() {
        let m = sample();
        let s = m.scenario("fig5").unwrap();
        assert_eq!(s.config[0].0, "bytes", "config sorted by key");
        assert_eq!(s.metric_value("speedup"), Some(2.5));
        assert_eq!(s.config_value("nodes"), Some("128"));
        m.validate().unwrap();

        let mut s2 = s.clone();
        s2.metric("speedup", 3.0);
        assert_eq!(s2.metric_value("speedup"), Some(3.0));
        assert_eq!(s2.metrics.len(), s.metrics.len(), "replaced, not added");
    }

    #[test]
    fn json_round_trips_bit_exactly_without_wall_metrics() {
        let m = sample();
        let js = m.to_json();
        json::validate(&js).unwrap();
        assert!(!js.contains("wall."), "wall metrics never serialized");
        let back = RunManifest::from_json(&js).unwrap();
        assert_eq!(back, m.without_wall());
        assert_eq!(back.to_json(), js, "re-serialization is byte-exact");
    }

    #[test]
    fn non_finite_metrics_serialize_as_null_and_restore_infinite() {
        let mut m = sample();
        m.scenarios[0].metric("direct.end_time", f64::INFINITY);
        let js = m.to_json();
        assert!(js.contains("\"direct.end_time\": null"), "{js}");
        let back = RunManifest::from_json(&js).unwrap();
        assert!(back.scenarios[0]
            .metric_value("direct.end_time")
            .unwrap()
            .is_infinite());
    }

    #[test]
    fn fingerprint_tracks_content() {
        let m = sample();
        assert_eq!(m.fingerprint().len(), 16);
        assert_eq!(m.fingerprint(), m.clone().fingerprint());
        let mut changed = m.clone();
        changed.scenarios[0].metric("speedup", 2.6);
        assert_ne!(m.fingerprint(), changed.fingerprint());
        // Wall metrics are outside the serialized view, so they cannot
        // perturb the hash.
        let mut walled = m.clone();
        walled.scenarios[0].metric("wall.secs", 99.0);
        assert_eq!(m.fingerprint(), walled.fingerprint());
    }

    #[test]
    fn attach_profile_extracts_rollups_and_top_blame() {
        let run = RunProfile {
            name: "direct".to_string(),
            end_time: 30.0,
            transfers: vec![TransferProfile {
                id: 0,
                label: "n0->n1".to_string(),
                bytes: 1000,
                ready: 0.0,
                start: 1.0,
                end: 30.0,
                delivered: false,
                queued: 1.0,
                cap_limited: 2.0,
                stalled: 3.0,
                latency: 4.0,
                link_blame: vec![("a".into(), 5.0), ("b".into(), 15.0)],
                bindings: vec![],
                deps: vec![],
            }],
        };
        let art = ProfileArtifact { runs: vec![run] };
        let mut s = ScenarioManifest::new("x");
        s.attach_profile(&art, 1);
        assert_eq!(s.metric_value("profile.direct.end_time"), Some(30.0));
        assert_eq!(s.metric_value("profile.direct.undelivered"), Some(1.0));
        assert_eq!(s.metric_value("profile.direct.cat.network"), Some(20.0));
        assert_eq!(s.metric_value("profile.direct.cat.stalled"), Some(3.0));
        assert_eq!(s.metric_value("profile.direct.critical_path_len"), Some(1.0));
        // top_k = 1 keeps only the most-blamed link.
        assert_eq!(s.blame, vec![("direct/b".to_string(), 15.0)]);
        s.validate().unwrap();
    }

    #[test]
    fn validate_rejects_unsorted_maps() {
        let mut m = sample();
        m.scenarios[0].metrics.push(("aaa".into(), 1.0)); // breaks order
        assert!(m.validate().unwrap_err().contains("not sorted"));

        let mut m2 = RunManifest::default();
        m2.scenarios.push(ScenarioManifest::new("b"));
        m2.scenarios.push(ScenarioManifest::new("a"));
        assert!(m2.validate().unwrap_err().contains("scenarios not sorted"));
    }

    #[test]
    fn from_json_rejects_malformed_manifests() {
        assert!(RunManifest::from_json("{}").unwrap_err().contains("bgq_manifest"));
        assert!(RunManifest::from_json("{\"bgq_manifest\": 99, \"scenarios\": []}")
            .unwrap_err()
            .contains("version 99"));
        let missing = "{\"bgq_manifest\": 1, \"scenarios\": [{\"name\": \"x\"}]}";
        assert!(RunManifest::from_json(missing)
            .unwrap_err()
            .contains("config"));
    }
}
