//! Property tests for the run-ledger: JSON round-trips are bit-exact
//! (including the non-finite → `null` → `INFINITY` handling shared with
//! the profile artifact), and the sentinel's diff of a manifest against
//! itself is all-NEUTRAL for every scenario.

use bgq_obs::ledger::{RunManifest, ScenarioManifest};
use bgq_obs::{json, sentinel};
use proptest::prelude::*;

/// Metric/blame values: finite floats across many magnitudes, exact
/// zeros, and `+INFINITY` (the only non-finite the workspace's writers
/// produce — undelivered-transfer end times). NaN and `-inf` are
/// deliberately excluded: they serialize as `null` like `+inf` does, so
/// they cannot round-trip and the writers never emit them.
fn arb_value() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(0.0),
        Just(-0.0),
        Just(f64::INFINITY),
        (0u64..1_000_000_000_000).prop_map(|n| n as f64 / 1024.0),
        (0u64..1_000_000).prop_map(|n| n as f64 * 1.5e9),
        any::<u64>().prop_map(|bits| {
            let v = f64::from_bits(bits);
            if v.is_finite() {
                v
            } else {
                bits as f64
            }
        }),
    ]
}

/// Keys: realistic metric names, `wall.`-prefixed wall-clock names (kept
/// in memory, excluded from serialization), and names that need JSON
/// escaping.
fn arb_key() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("direct.makespan".to_string()),
        Just("agg.throughput".to_string()),
        Just("speedup".to_string()),
        Just("multipath.win_ratio".to_string()),
        Just("wall.secs".to_string()),
        Just("wall.events_per_sec".to_string()),
        Just("needs \"escaping\"\n".to_string()),
        Just("comma,key".to_string()),
        (0u32..500).prop_map(|i| format!("metric.{i:03}")),
    ]
}

fn arb_scenario(name: &'static str) -> impl Strategy<Value = ScenarioManifest> {
    (
        proptest::collection::vec((arb_key(), 0u64..100_000), 0..6),
        proptest::collection::vec((arb_key(), arb_value()), 0..12),
        proptest::collection::vec((arb_key(), arb_value()), 0..6),
    )
        .prop_map(move |(config, metrics, blame)| {
            let mut s = ScenarioManifest::new(name);
            for (k, v) in config {
                s.config(&k, v);
            }
            for (k, v) in metrics {
                s.metric(&k, v);
            }
            for (k, v) in blame {
                s.blame(&k, v);
            }
            s
        })
}

fn arb_manifest() -> impl Strategy<Value = RunManifest> {
    (
        arb_scenario("alpha"),
        arb_scenario("beta"),
        arb_scenario("gamma"),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(a, b, c, keep_b, keep_c)| {
            let mut m = RunManifest::default();
            m.push(a);
            if keep_b {
                m.push(b);
            }
            if keep_c {
                m.push(c);
            }
            m
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn manifest_json_round_trips_bit_exactly(m in arb_manifest()) {
        m.validate().expect("generated manifests are structurally valid");
        let js = m.to_json();
        json::validate(&js).expect("manifest JSON must parse");

        let back = RunManifest::from_json(&js).expect("round-trip parse");
        // The wall-clock exclusion applies to *metrics* (config and
        // blame keys are free-form): nothing wall-prefixed survives the
        // round trip as a metric.
        for s in &back.scenarios {
            prop_assert!(
                s.metrics.iter().all(|(k, _)| !k.starts_with("wall.")),
                "wall metrics must not serialize"
            );
        }
        // Equality here is f64 PartialEq on every metric/blame value:
        // bit-exact for finite floats, and inf == inf for the null path.
        prop_assert_eq!(&back, &m.without_wall());
        prop_assert_eq!(back.to_json(), js, "re-serialization is byte-exact");
        prop_assert_eq!(back.fingerprint(), m.fingerprint());
    }

    #[test]
    fn self_diff_is_all_neutral_for_every_scenario(m in arb_manifest()) {
        let rep = sentinel::diff(&m, &m);
        prop_assert!(!rep.has_regressions());
        prop_assert!(rep.removed_scenarios.is_empty());
        prop_assert!(rep.added_scenarios.is_empty());
        let (regressed, improved, neutral) = rep.totals();
        prop_assert_eq!(regressed, 0);
        prop_assert_eq!(improved, 0);
        let total_metrics: usize = m.scenarios.iter().map(|s| s.metrics.len()).sum();
        prop_assert_eq!(neutral, total_metrics);
        for s in &rep.scenarios {
            prop_assert!(s.config_drift.is_empty());
            prop_assert!(s.added_metrics.is_empty());
            prop_assert!(s.removed_metrics.is_empty());
            prop_assert!(s.attribution.is_empty());
            for v in &s.verdicts {
                prop_assert!(!v.changed, "self-diff metric {} reported changed", v.name);
            }
        }
        // And the serialized round-trip self-diffs clean too.
        let back = RunManifest::from_json(&m.to_json()).unwrap();
        prop_assert!(!sentinel::diff(&back, &m.without_wall()).has_regressions());
    }
}
