//! Property tests for the collective-I/O baseline.

use bgq_comm::{Machine, Program};
use bgq_iosys::*;
use bgq_netsim::SimConfig;
use bgq_torus::{standard_shape, NodeId};
use proptest::prelude::*;

fn machine() -> Machine {
    Machine::new(standard_shape(128).unwrap(), SimConfig::default())
}

fn data_strategy() -> impl Strategy<Value = Vec<(NodeId, u64)>> {
    proptest::collection::vec(0u64..32_000_000, 1..128).prop_map(|sizes| {
        sizes
            .into_iter()
            .enumerate()
            .map(|(i, b)| (NodeId(i as u32), b))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn domain_transfers_conserve_and_bound(data in data_strategy(), nagg in 1usize..64) {
        let total: u64 = data.iter().map(|&(_, b)| b).sum();
        let ts = domain_transfers(&data, nagg);
        prop_assert_eq!(ts.iter().map(|t| t.bytes).sum::<u64>(), total);
        for t in &ts {
            prop_assert!(t.to_aggregator_index < nagg);
            prop_assert!(t.bytes > 0);
        }
        // Domain loads differ by at most one fd_size (ROMIO evenness).
        if total > 0 {
            let loads = domain_loads(&ts, nagg);
            let fd = total.div_ceil(nagg as u64);
            for &l in &loads {
                prop_assert!(l <= fd, "domain overloaded: {l} > {fd}");
            }
        }
    }

    #[test]
    fn one_nodes_region_maps_to_contiguous_domains(bytes in 1u64..100_000_000, nagg in 1usize..32) {
        // A single writer's file region maps to a contiguous run of
        // domains (ROMIO's file-domain contiguity).
        let ts = domain_transfers(&[(NodeId(0), bytes)], nagg);
        let mut idxs: Vec<usize> = ts.iter().map(|t| t.to_aggregator_index).collect();
        let sorted = {
            let mut s = idxs.clone();
            s.sort_unstable();
            s
        };
        prop_assert_eq!(&idxs, &sorted, "domains visited out of order");
        idxs.dedup();
        for w in idxs.windows(2) {
            prop_assert_eq!(w[1], w[0] + 1, "gap in domain run");
        }
    }

    #[test]
    fn collective_write_always_completes(data in data_strategy()) {
        let m = machine();
        let mut p = Program::new(&m);
        let h = plan_collective_write(&mut p, &data, &CollectiveIoConfig::default());
        let rep = p.run();
        let total: u64 = data.iter().map(|&(_, b)| b).sum();
        prop_assert_eq!(h.bytes, total);
        if total > 0 {
            prop_assert!(h.completed_at(&rep) > 0.0);
            // Physical ceiling: one pset, only bridge 0 in the baseline.
            prop_assert!(h.throughput(&rep) <= 2.0e9 * 1.01);
        }
    }

    #[test]
    fn independent_write_matches_request_count(
        bytes in 0u64..64_000_000,
        req in (1u64 << 20)..(16u64 << 20),
    ) {
        let m = machine();
        let mut p = Program::new(&m);
        let h = plan_independent_write(&mut p, &[(NodeId(9), bytes)], req);
        prop_assert_eq!(h.tokens.len() as u64, bytes.div_ceil(req));
        prop_assert_eq!(h.bytes, bytes);
    }

    #[test]
    fn default_aggregator_count_is_exact(per_pset in 1u32..64) {
        let m = machine();
        let aggs = default_aggregators(m.io_layout(), per_pset);
        prop_assert_eq!(aggs.len() as u32, per_pset * m.io_layout().num_psets());
        let mut uniq = aggs.clone();
        uniq.sort();
        uniq.dedup();
        prop_assert_eq!(uniq.len(), aggs.len());
    }
}
