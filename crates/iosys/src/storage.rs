//! Optional storage backend: extending ION-terminated write plans through
//! the switch complex to the file servers.
//!
//! The paper's I/O experiments write to `/dev/null` on the IONs, so the
//! pset's two 2 GB/s eleventh links are the end of the line. Production
//! I/O continues: each ION forwards over its InfiniBand link, and all IONs
//! share the file servers' aggregate ingest (paper Fig. 1). This module
//! lets any plan whose ION-side chunks are known continue to storage, so
//! experiments can compare `/dev/null` aggregation throughput with
//! end-to-end storage throughput.

use bgq_comm::{Program, TransferHandle};
use bgq_netsim::TransferId;
use bgq_torus::IonId;

/// One ION-terminated chunk of a write plan: the delivery token at the
/// ION, which ION it landed on, and its size.
#[derive(Debug, Clone, Copy)]
pub struct IonChunk {
    pub ion: IonId,
    pub bytes: u64,
    pub delivered: TransferId,
}

/// Continue every ION chunk to the file servers. Returns the storage-side
/// completion handle.
///
/// # Panics
/// Panics if the machine has no filesystem attached.
pub fn continue_to_storage(prog: &mut Program<'_>, chunks: &[IonChunk]) -> TransferHandle {
    let fwd = prog.machine().config().forward_overhead;
    let mut tokens = Vec::with_capacity(chunks.len());
    let mut bytes = 0u64;
    for c in chunks {
        tokens.push(prog.fs_write(c.ion, c.bytes, vec![c.delivered], fwd));
        bytes += c.bytes;
    }
    TransferHandle { tokens, bytes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgq_comm::{FsParams, Machine};
    use bgq_netsim::SimConfig;
    use bgq_torus::{standard_shape, NodeId, PsetId};

    fn fs_machine(nodes: u32, fs: FsParams) -> Machine {
        Machine::new(standard_shape(nodes).unwrap(), SimConfig::default()).with_filesystem(fs)
    }

    /// Drive a write from a bridge through ION to storage and check the
    /// end-to-end path exists.
    #[test]
    fn ion_chunks_reach_the_file_servers() {
        let m = fs_machine(128, FsParams::default());
        let layout = m.io_layout().clone();
        let bridge = layout.bridges_of_pset(PsetId(0))[0];
        let mut p = Program::new(&m);
        let at_ion = p.ion_forward(bridge, 8 << 20, Vec::new(), 0.0);
        let h = continue_to_storage(
            &mut p,
            &[IonChunk {
                ion: layout.ion_of_pset(PsetId(0)),
                bytes: 8 << 20,
                delivered: at_ion,
            }],
        );
        let rep = p.run();
        assert!(h.completed_at(&rep) > rep.delivered_at(at_ion));
    }

    #[test]
    fn slow_filesystem_becomes_the_bottleneck() {
        // With a crippled aggregate ingest, end-to-end throughput drops to
        // the filesystem rate regardless of the torus.
        let slow = FsParams {
            per_ion_bandwidth: 3.2e9,
            aggregate_bandwidth: 0.5e9,
        };
        let m = fs_machine(128, slow);
        let layout = m.io_layout().clone();
        let mut p = Program::new(&m);
        let bytes = 64u64 << 20;
        let mut chunks = Vec::new();
        for (i, bridge) in layout.bridges_of_pset(PsetId(0)).into_iter().enumerate() {
            let t = p.ion_forward(bridge, bytes / 2, Vec::new(), 0.0);
            let _ = i;
            chunks.push(IonChunk {
                ion: layout.ion_of_pset(PsetId(0)),
                bytes: bytes / 2,
                delivered: t,
            });
        }
        let h = continue_to_storage(&mut p, &chunks);
        let rep = p.run();
        let thr = h.throughput(&rep);
        assert!(thr <= 0.5e9 * 1.01, "fs-bound write too fast: {thr}");
        assert!(thr >= 0.3e9, "pipeline should approach the fs rate: {thr}");
    }

    #[test]
    fn fast_filesystem_leaves_io_links_binding() {
        let m = fs_machine(128, FsParams::default());
        let layout = m.io_layout().clone();
        let mut p = Program::new(&m);
        let bytes = 32u64 << 20;
        let bridge = layout.bridges_of_pset(PsetId(0))[0];
        let t = p.ion_forward(bridge, bytes, Vec::new(), 0.0);
        let h = continue_to_storage(
            &mut p,
            &[IonChunk {
                ion: layout.ion_of_pset(PsetId(0)),
                bytes,
                delivered: t,
            }],
        );
        let rep = p.run();
        // Store-and-forward over two ~2 GB/s stages: end-to-end rate is
        // roughly half the eleventh-link rate, never more than the link.
        let thr = h.throughput(&rep);
        assert!(thr <= 2.0e9 * 1.01);
        assert!(thr >= 0.8e9, "{thr}");
    }

    #[test]
    #[should_panic(expected = "no filesystem attached")]
    fn fs_write_without_fs_panics() {
        let m = Machine::new(standard_shape(128).unwrap(), SimConfig::default());
        let mut p = Program::new(&m);
        p.fs_write(bgq_torus::IonId(0), 1024, Vec::new(), 0.0);
    }

    #[test]
    fn capacities_include_fs_resources() {
        let m = fs_machine(256, FsParams::default());
        // 256 nodes: 2560 torus + 4+4 io links (both directions) +
        // 2 ion IB + 1 aggregate.
        assert_eq!(m.num_resources(), 2560 + 8 + 2 + 1);
        let caps = m.capacities();
        assert_eq!(caps.len(), 2571);
        assert_eq!(caps[2568], 3.2e9);
        assert_eq!(caps[2570], 240e9);
        // The fs sink node exists.
        assert_eq!(m.num_sim_nodes(), 256 + 2 + 1);
        let _ = m.fs_sim_node();
    }

    #[test]
    fn default_write_path_unaffected_without_fs() {
        let m = Machine::new(standard_shape(128).unwrap(), SimConfig::default());
        assert_eq!(m.num_resources(), 1280 + 4);
        let mut p = Program::new(&m);
        let t = p.write_default(NodeId(5), 1 << 20, Vec::new());
        assert!(p.run().delivered_at(t) > 0.0);
    }
}
