//! Collective *read* (restart) paths: the write pipelines reversed.
//!
//! Checkpoints written by HACC-style codes are read back on restart with
//! the same sparse structure. The baseline mirrors ROMIO's two-phase
//! read: aggregators fetch their file domains from the ION (over the
//! eleventh link, then the torus) and scatter the pieces to the ranks
//! that own them. The topology-aware variant in
//! `sdm_core::io_move::plan_topology_aware_read` reverses Algorithm 2.

use crate::collective::{default_aggregators, CollectiveIoConfig};
use crate::file_domain::domain_transfers;
use bgq_comm::{CollectiveModel, Program, TransferHandle};
use bgq_torus::NodeId;

/// Plan a default MPI-IO collective read of per-node volumes `data`
/// (file order = node order): ION → bridge → aggregator → owner.
/// Returns the handle whose completion means every node holds its data.
pub fn plan_collective_read(
    prog: &mut Program<'_>,
    data: &[(NodeId, u64)],
    cfg: &CollectiveIoConfig,
) -> TransferHandle {
    let machine = prog.machine();
    let layout = machine.io_layout().clone();
    let aggregators = default_aggregators(&layout, cfg.aggregators_per_pset);
    let total: u64 = data.iter().map(|&(_, b)| b).sum();

    let cm = CollectiveModel::new(machine);
    let sync_cost = cm.gather_control(machine.num_nodes()) + cm.bcast(machine.num_nodes(), 8);
    let sync = prog.modeled_sync(NodeId(0), sync_cost, Vec::new());

    let fwd = machine.config().forward_overhead;
    let transfers = domain_transfers(data, aggregators.len());

    let mut tokens = Vec::with_capacity(transfers.len());
    for t in &transfers {
        let agg = aggregators[t.to_aggregator_index];
        let bridge = layout.default_bridge(agg);
        let mut remaining = t.bytes;
        while remaining > 0 {
            let chunk = remaining.min(cfg.cb_buffer);
            remaining -= chunk;
            // ION -> bridge over the eleventh link (reads flow inbound).
            let from_ion = prog.ion_read(bridge, chunk, vec![sync], 0.0);
            // Bridge -> aggregator over the torus.
            let at_agg = if bridge == agg {
                from_ion
            } else {
                prog.put_after(bridge, agg, chunk, vec![from_ion], fwd)
            };
            // Aggregator scatters to the owning node.
            let delivered = if t.from == agg {
                at_agg
            } else {
                prog.put_after(agg, t.from, chunk, vec![at_agg], fwd)
            };
            tokens.push(delivered);
        }
    }
    TransferHandle { tokens, bytes: total }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgq_comm::Machine;
    use bgq_netsim::SimConfig;
    use bgq_torus::standard_shape;

    fn machine() -> Machine {
        Machine::new(standard_shape(128).unwrap(), SimConfig::default())
    }

    #[test]
    fn read_completes_and_conserves() {
        let m = machine();
        let mut p = Program::new(&m);
        let data: Vec<(NodeId, u64)> = (0..128).map(|i| (NodeId(i), 2 << 20)).collect();
        let h = plan_collective_read(&mut p, &data, &CollectiveIoConfig::default());
        assert_eq!(h.bytes, 128 * (2 << 20));
        let rep = p.run();
        assert!(h.completed_at(&rep) > 0.0);
    }

    #[test]
    fn read_is_bridge0_limited_like_the_write() {
        let m = machine();
        let mut p = Program::new(&m);
        let data: Vec<(NodeId, u64)> = (0..128).map(|i| (NodeId(i), 8 << 20)).collect();
        let h = plan_collective_read(&mut p, &data, &CollectiveIoConfig::default());
        let rep = p.run();
        let thr = h.throughput(&rep);
        assert!(thr <= 2.0e9 * 1.01, "default read should be one-bridge limited: {thr}");
    }

    #[test]
    fn empty_read_is_trivial() {
        let m = machine();
        let mut p = Program::new(&m);
        let h = plan_collective_read(&mut p, &[], &CollectiveIoConfig::default());
        assert!(h.tokens.is_empty());
    }
}
