//! The default MPI-IO collective write (the paper's baseline).
//!
//! Models ROMIO collective buffering as deployed on BG/Q:
//!
//! * a **static** set of collective-buffering aggregators — a fixed number
//!   per pset, taken in rank order from the start of the pset. As the
//!   paper observes (§IV.A), "these nodes are neither uniformly
//!   distributed nor balanced to connect to all I/O nodes": the clustered
//!   placement puts every default aggregator in the first half of its
//!   pset, so all of them drain through the pset's *first* bridge node and
//!   the second 2 GB/s I/O link sits idle;
//! * even-by-offset **file domains** ([`crate::file_domain`]): the
//!   exchange phase ships each byte to the aggregator owning its offset
//!   range, regardless of topology;
//! * aggregators flush their collective buffers to their default bridge
//!   node and onward to the ION in `cb_buffer`-sized rounds.

use crate::file_domain::domain_transfers;
use bgq_comm::{CollectiveModel, Program, TransferHandle};
use bgq_torus::{IoLayout, NodeId};

/// Tunables of the baseline collective write.
#[derive(Debug, Clone)]
pub struct CollectiveIoConfig {
    /// Collective-buffering aggregators per pset (`cb_nodes / n_psets`).
    pub aggregators_per_pset: u32,
    /// Collective buffer size: granularity of aggregator-side flushes.
    pub cb_buffer: u64,
}

impl Default for CollectiveIoConfig {
    fn default() -> Self {
        CollectiveIoConfig {
            aggregators_per_pset: 8,
            cb_buffer: 16 << 20,
        }
    }
}

/// The default (static, rank-order) aggregator set: the first
/// `per_pset` nodes of every pset.
pub fn default_aggregators(layout: &IoLayout, per_pset: u32) -> Vec<NodeId> {
    assert!(
        (1..=bgq_torus::PSET_NODES).contains(&per_pset),
        "aggregators per pset out of range"
    );
    (0..layout.num_psets())
        .flat_map(|p| {
            let start = layout.pset_start(bgq_torus::PsetId(p)).0;
            (start..start + per_pset).map(NodeId)
        })
        .collect()
}

/// Plan a default MPI-IO collective write of per-node volumes `data`
/// (file order = node order). Returns the ION-side completion handle.
pub fn plan_collective_write(
    prog: &mut Program<'_>,
    data: &[(NodeId, u64)],
    cfg: &CollectiveIoConfig,
) -> TransferHandle {
    let machine = prog.machine();
    let layout = machine.io_layout().clone();
    let aggregators = default_aggregators(&layout, cfg.aggregators_per_pset);
    let total: u64 = data.iter().map(|&(_, b)| b).sum();

    // Two-phase setup: every rank learns all access ranges (allgather of
    // offsets/lengths) before the exchange phase — modelled collectively.
    let cm = CollectiveModel::new(machine);
    let sync_cost = cm.gather_control(machine.num_nodes()) + cm.bcast(machine.num_nodes(), 8);
    let sync = prog.modeled_sync(NodeId(0), sync_cost, Vec::new());

    let fwd = machine.config().forward_overhead;
    let transfers = domain_transfers(data, aggregators.len());

    let mut tokens = Vec::with_capacity(transfers.len());
    for t in &transfers {
        let agg = aggregators[t.to_aggregator_index];
        // Exchange phase (in cb_buffer rounds) + write phase per round.
        let mut remaining = t.bytes;
        while remaining > 0 {
            let chunk = remaining.min(cfg.cb_buffer);
            remaining -= chunk;
            let arrive = if t.from == agg {
                vec![sync]
            } else {
                vec![prog.put_after(t.from, agg, chunk, vec![sync], 0.0)]
            };
            // Default path out: the aggregator's own default bridge.
            let bridge = layout.default_bridge(agg);
            let bridged = if bridge == agg {
                arrive
            } else {
                vec![prog.put_after(agg, bridge, chunk, arrive, fwd)]
            };
            tokens.push(prog.ion_forward(bridge, chunk, bridged, fwd));
        }
    }

    TransferHandle { tokens, bytes: total }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgq_comm::Machine;
    use bgq_netsim::SimConfig;
    use bgq_torus::{standard_shape, PsetId};

    fn machine(nodes: u32) -> Machine {
        Machine::new(standard_shape(nodes).unwrap(), SimConfig::default())
    }

    #[test]
    fn default_aggregators_are_clustered_at_pset_start() {
        let m = machine(512);
        let layout = m.io_layout();
        let aggs = default_aggregators(layout, 8);
        assert_eq!(aggs.len(), 32);
        for (i, a) in aggs.iter().enumerate() {
            let pset = (i / 8) as u32;
            assert_eq!(layout.pset_of(*a), PsetId(pset));
            assert!(a.0 % 128 < 8, "default aggregator not clustered: {a}");
        }
    }

    #[test]
    fn clustered_aggregators_use_only_the_first_bridge() {
        // The imbalance the paper calls out: every default aggregator
        // drains via bridge 0 of its pset.
        let m = machine(512);
        let layout = m.io_layout();
        for a in default_aggregators(layout, 8) {
            let bridge = layout.default_bridge(a);
            assert_eq!(
                bridge,
                layout.bridges_of_pset(layout.pset_of(a))[0],
                "default aggregators must map to the first bridge"
            );
        }
    }

    #[test]
    fn collective_write_completes_and_conserves_bytes() {
        let m = machine(128);
        let mut p = Program::new(&m);
        let data: Vec<(NodeId, u64)> = (0..128).map(|i| (NodeId(i), 2 << 20)).collect();
        let h = plan_collective_write(&mut p, &data, &CollectiveIoConfig::default());
        assert_eq!(h.bytes, 128 * (2 << 20));
        let rep = p.run();
        assert!(h.completed_at(&rep) > 0.0);
    }

    #[test]
    fn baseline_throughput_capped_by_single_bridge() {
        // With all aggregators behind one bridge, a one-pset write cannot
        // exceed the single 2 GB/s I/O link.
        let m = machine(128);
        let mut p = Program::new(&m);
        let data: Vec<(NodeId, u64)> = (0..128).map(|i| (NodeId(i), 8 << 20)).collect();
        let h = plan_collective_write(&mut p, &data, &CollectiveIoConfig::default());
        let rep = p.run();
        let thr = h.throughput(&rep);
        assert!(
            thr <= 2.0e9 * 1.01,
            "baseline should be bridge-0 limited, got {thr}"
        );
    }

    #[test]
    fn cb_buffer_rounds_split_large_domains() {
        let m = machine(128);
        let mut p = Program::new(&m);
        let data = vec![(NodeId(5), 40u64 << 20)];
        let cfg = CollectiveIoConfig {
            aggregators_per_pset: 1,
            cb_buffer: 16 << 20,
        };
        let h = plan_collective_write(&mut p, &data, &cfg);
        // 40 MB over one aggregator in 16 MB rounds -> 3 ION forwards.
        assert_eq!(h.tokens.len(), 3);
    }

    #[test]
    fn empty_write_is_trivial() {
        let m = machine(128);
        let mut p = Program::new(&m);
        let h = plan_collective_write(&mut p, &[], &CollectiveIoConfig::default());
        assert_eq!(h.bytes, 0);
        assert!(h.tokens.is_empty());
    }
}
