//! ROMIO-style file domains for two-phase collective I/O.
//!
//! In a collective write, each rank's data occupies a contiguous region of
//! the shared file (here: per-node volumes concatenated in node order).
//! The aggregate access range `[0, T)` is divided evenly among the
//! collective-buffering aggregators; each aggregator owns one contiguous
//! *file domain* and receives, during the exchange phase, every byte that
//! falls inside it.
//!
//! This even-by-offset division is exactly what makes the default scheme
//! fragile under sparse patterns: which aggregators receive data is
//! dictated by file offsets, not by topology or I/O-node load.

use bgq_torus::NodeId;

/// One exchange-phase transfer: `bytes` from `from`'s file region to the
/// aggregator owning the overlapping domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DomainTransfer {
    pub from: NodeId,
    pub to_aggregator_index: usize,
    pub bytes: u64,
}

/// Compute the exchange-phase transfers for per-node volumes (in file
/// order) against `num_aggregators` even file domains.
///
/// Zero-byte nodes produce no transfers. The final partial domain (when
/// `T` is not a multiple of the domain size) belongs to the last
/// aggregator, as in ROMIO.
pub fn domain_transfers(
    data: &[(NodeId, u64)],
    num_aggregators: usize,
) -> Vec<DomainTransfer> {
    assert!(num_aggregators > 0, "need at least one aggregator");
    let total: u64 = data.iter().map(|&(_, b)| b).sum();
    if total == 0 {
        return Vec::new();
    }
    // ROMIO: fd_size = ceil(T / num_agg); last domain takes the remainder.
    let fd_size = total.div_ceil(num_aggregators as u64);
    let mut out = Vec::new();
    let mut offset = 0u64;
    for &(node, bytes) in data {
        let mut start = offset;
        let end = offset + bytes;
        while start < end {
            let domain = ((start / fd_size) as usize).min(num_aggregators - 1);
            let domain_end = ((domain as u64 + 1) * fd_size).min(end);
            let chunk = domain_end - start;
            out.push(DomainTransfer {
                from: node,
                to_aggregator_index: domain,
                bytes: chunk,
            });
            start = domain_end;
        }
        offset = end;
    }
    out
}

/// Bytes landing in each file domain.
pub fn domain_loads(transfers: &[DomainTransfer], num_aggregators: usize) -> Vec<u64> {
    let mut loads = vec![0u64; num_aggregators];
    for t in transfers {
        loads[t.to_aggregator_index] += t.bytes;
    }
    loads
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(sizes: &[u64]) -> Vec<(NodeId, u64)> {
        sizes
            .iter()
            .enumerate()
            .map(|(i, &b)| (NodeId(i as u32), b))
            .collect()
    }

    #[test]
    fn bytes_are_conserved() {
        let d = data(&[100, 0, 250, 50, 999]);
        let ts = domain_transfers(&d, 4);
        assert_eq!(ts.iter().map(|t| t.bytes).sum::<u64>(), 1399);
    }

    #[test]
    fn even_data_maps_one_to_one() {
        // 4 nodes x 100 bytes over 4 domains of 100: node i -> domain i.
        let d = data(&[100, 100, 100, 100]);
        let ts = domain_transfers(&d, 4);
        assert_eq!(ts.len(), 4);
        for (i, t) in ts.iter().enumerate() {
            assert_eq!(t.to_aggregator_index, i);
            assert_eq!(t.bytes, 100);
        }
    }

    #[test]
    fn straddling_regions_split() {
        // One node with 100 bytes over 4 domains of 25 each.
        let d = data(&[100]);
        let ts = domain_transfers(&d, 4);
        assert_eq!(ts.len(), 4);
        assert!(ts.iter().all(|t| t.bytes == 25));
        assert!(ts.iter().all(|t| t.from == NodeId(0)));
    }

    #[test]
    fn concentrated_data_touches_all_domains() {
        // The key property: domains are by OFFSET, so even data from one
        // node spreads over every aggregator...
        let d = data(&[1000, 0, 0, 0]);
        let loads = domain_loads(&domain_transfers(&d, 4), 4);
        assert!(loads.iter().all(|&l| l == 250));
    }

    #[test]
    fn zero_total_is_empty() {
        assert!(domain_transfers(&data(&[0, 0]), 8).is_empty());
    }

    #[test]
    fn remainder_goes_to_last_domain() {
        // T = 10 over 3 domains: fd = 4,4,2.
        let d = data(&[10]);
        let loads = domain_loads(&domain_transfers(&d, 3), 3);
        assert_eq!(loads, vec![4, 4, 2]);
    }

    #[test]
    fn domain_count_larger_than_bytes() {
        let d = data(&[3]);
        let ts = domain_transfers(&d, 8);
        assert_eq!(ts.iter().map(|t| t.bytes).sum::<u64>(), 3);
        assert!(ts.iter().all(|t| t.bytes > 0));
    }
}
