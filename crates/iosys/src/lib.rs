//! # bgq-iosys
//!
//! The I/O-system baseline for the sparse-data-movement reproduction: a
//! ROMIO-style two-phase **MPI-IO collective write** with the default BG/Q
//! aggregator placement. This is the "default MPI collective I/O" curve in
//! the paper's Figures 10 and 11, against which `sdm-core`'s
//! topology-aware dynamic aggregation is compared.
//!
//! * [`file_domain`] — even-by-offset file domains and the exchange-phase
//!   transfer computation;
//! * [`collective`] — the end-to-end baseline plan: static rank-order
//!   aggregators, exchange phase, `cb_buffer`-round flushes through each
//!   aggregator's default bridge node to the ION.
//!
//! ```
//! use bgq_comm::{Machine, Program};
//! use bgq_iosys::{plan_collective_write, CollectiveIoConfig};
//! use bgq_netsim::SimConfig;
//! use bgq_torus::{standard_shape, NodeId};
//!
//! let machine = Machine::new(standard_shape(128).unwrap(), SimConfig::default());
//! let mut prog = Program::new(&machine);
//! let data: Vec<(NodeId, u64)> = (0..128).map(|i| (NodeId(i), 1 << 20)).collect();
//! let handle = plan_collective_write(&mut prog, &data, &CollectiveIoConfig::default());
//! let report = prog.run();
//! assert!(handle.throughput(&report) > 0.0);
//! ```

pub mod collective;
pub mod file_domain;
pub mod independent;
pub mod read;
pub mod storage;

pub use collective::{default_aggregators, plan_collective_write, CollectiveIoConfig};
pub use file_domain::{domain_loads, domain_transfers, DomainTransfer};
pub use independent::{plan_independent_write, DEFAULT_REQUEST_BYTES};
pub use read::plan_collective_read;
pub use storage::{continue_to_storage, IonChunk};
