//! Independent (non-collective) I/O baseline: every node writes its own
//! data straight down the default path — torus to its default bridge
//! node, eleventh link to the ION — with no aggregation at all.
//!
//! This is the POSIX-style lower bound the I/O-forwarding literature
//! (paper refs [8]–[10]) starts from: it suffers both the bridge-load
//! imbalance *and* per-request overheads for every small writer, which is
//! exactly what collective buffering and the paper's aggregators exist to
//! fix.

use bgq_comm::{Program, TransferHandle};
use bgq_torus::NodeId;

/// Largest single write request (requests beyond this are split, as the
/// I/O forwarding layer does).
pub const DEFAULT_REQUEST_BYTES: u64 = 4 << 20;

/// Plan an independent write of per-node volumes.
pub fn plan_independent_write(
    prog: &mut Program<'_>,
    data: &[(NodeId, u64)],
    max_request: u64,
) -> TransferHandle {
    assert!(max_request > 0, "request size must be positive");
    let mut tokens = Vec::new();
    let mut total = 0u64;
    for &(node, bytes) in data {
        total += bytes;
        let mut remaining = bytes;
        while remaining > 0 {
            let chunk = remaining.min(max_request);
            remaining -= chunk;
            tokens.push(prog.write_default(node, chunk, Vec::new()));
        }
    }
    TransferHandle { tokens, bytes: total }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collective::{plan_collective_write, CollectiveIoConfig};
    use bgq_comm::Machine;
    use bgq_netsim::SimConfig;
    use bgq_torus::standard_shape;

    fn machine() -> Machine {
        Machine::new(standard_shape(128).unwrap(), SimConfig::default())
    }

    #[test]
    fn independent_write_completes_and_conserves() {
        let m = machine();
        let mut p = Program::new(&m);
        let data: Vec<(NodeId, u64)> = (0..128).map(|i| (NodeId(i), 1 << 20)).collect();
        let h = plan_independent_write(&mut p, &data, DEFAULT_REQUEST_BYTES);
        assert_eq!(h.bytes, 128 << 20);
        let rep = p.run();
        assert!(h.completed_at(&rep) > 0.0);
    }

    #[test]
    fn requests_are_split() {
        let m = machine();
        let mut p = Program::new(&m);
        let h = plan_independent_write(&mut p, &[(NodeId(3), 10 << 20)], 4 << 20);
        assert_eq!(h.tokens.len(), 3); // 4 + 4 + 2 MB
    }

    #[test]
    fn independent_uses_both_bridges_for_dense_data() {
        // Unlike default collective I/O (all aggregators behind bridge 0),
        // independent writes from the whole pset hit both bridges — but
        // pay per-request overheads instead.
        let m = Machine::new(standard_shape(128).unwrap(), SimConfig::default().with_link_stats());
        let mut p = Program::new(&m);
        let data: Vec<(NodeId, u64)> = (0..128).map(|i| (NodeId(i), 2 << 20)).collect();
        let _ = plan_independent_write(&mut p, &data, DEFAULT_REQUEST_BYTES);
        let rep = p.run();
        let rb = rep.resource_bytes.as_ref().unwrap();
        let ntorus = (m.shape().num_nodes() * 10) as usize;
        assert!(rb[ntorus] > 0.0 && rb[ntorus + 1] > 0.0, "both io links active");
    }

    #[test]
    fn zero_byte_nodes_produce_nothing() {
        let m = machine();
        let mut p = Program::new(&m);
        let h = plan_independent_write(&mut p, &[(NodeId(0), 0), (NodeId(1), 5)], 4 << 20);
        assert_eq!(h.tokens.len(), 1);
        assert_eq!(h.bytes, 5);
    }

    #[test]
    fn sparse_independent_write_loses_to_collective_buffering() {
        // One heavy writer: independent I/O serializes its requests down
        // one default path, while collective buffering spreads the file
        // domains over many aggregators.
        let m = machine();
        let data = vec![(NodeId(37), 256u64 << 20)];

        let mut p1 = Program::new(&m);
        let hi = plan_independent_write(&mut p1, &data, DEFAULT_REQUEST_BYTES);
        let t_ind = hi.completed_at(&p1.run());

        let mut p2 = Program::new(&m);
        let hc = plan_collective_write(&mut p2, &data, &CollectiveIoConfig::default());
        let t_col = hc.completed_at(&p2.run());

        assert!(
            t_col < t_ind,
            "collective {t_col} should beat independent {t_ind} for one writer"
        );
    }
}
