//! # bgq-sparsemove
//!
//! Umbrella crate for the reproduction of *"Improving Data Movement
//! Performance for Sparse Data Patterns on the Blue Gene/Q Supercomputer"*
//! (Bui, Leigh, Jung, Vishwanath, Papka — ICPP 2014), built entirely in
//! Rust over a simulated BG/Q substrate.
//!
//! The stack, bottom-up:
//!
//! * [`torus`] (`bgq-torus`) — 5D torus topology, deterministic zone
//!   routing, psets / bridge nodes / I/O nodes, rank mappings;
//! * [`netsim`] (`bgq-netsim`) — deterministic flow-level network
//!   simulator with max-min fair link sharing and per-node injection
//!   serialization;
//! * [`comm`] (`bgq-comm`) — MPI-like one-sided puts, I/O forwards and
//!   collectives over the simulator;
//! * [`iosys`] (`bgq-iosys`) — the default MPI-IO collective-write
//!   baseline (ROMIO-style two-phase I/O);
//! * [`core`] (`sdm-core`) — **the paper's contribution**: the §IV.B cost
//!   model, Algorithm 1 (proxy-based multipath transfers) and Algorithm 2
//!   (dynamic topology-aware I/O aggregation);
//! * [`workloads`] (`bgq-workloads`) — the sparse data patterns and the
//!   HACC I/O footprint.
//!
//! See `examples/` for runnable scenarios and the `bgq-bench` crate for
//! the harnesses that regenerate every figure of the paper.
//!
//! ## Quickstart
//!
//! ```
//! use bgq_sparsemove::prelude::*;
//!
//! let machine = Machine::new(standard_shape(128).unwrap(), SimConfig::default());
//! let mover = SparseMover::new(&machine);
//! let mut prog = Program::new(&machine);
//! let outcome = mover
//!     .plan(&mut prog, PlanRequest::new(NodeId(0), NodeId(127), 32 << 20))
//!     .unwrap();
//! let report = prog.run();
//! println!(
//!     "{:?} -> {:.2} GB/s",
//!     outcome.decision,
//!     outcome.handle.throughput(&report) / 1e9
//! );
//! ```

pub use bgq_comm as comm;
pub use bgq_iosys as iosys;
pub use bgq_netsim as netsim;
pub use bgq_torus as torus;
pub use bgq_workloads as workloads;
pub use sdm_core as core;

/// The most commonly used items across the stack.
pub mod prelude {
    pub use bgq_comm::{CollectiveModel, Machine, Program, SparseSendMap, TransferHandle};
    pub use bgq_iosys::{plan_collective_write, CollectiveIoConfig};
    pub use bgq_netsim::{SimConfig, SimReport, Simulator, TransferGraph, TransferSpec};
    pub use bgq_torus::{
        shape_for_cores, standard_shape, Coord, Dim, Direction, IoLayout, NodeId, Rank,
        RankMap, Shape, Sign, Zone,
    };
    pub use bgq_workloads::{
        coalesce_to_nodes, hacc_workload, nonzero_nodes, pareto_sizes, uniform_sizes,
        Histogram, ParetoParams,
    };
    pub use sdm_core::{
        AggregatorTable, AssignPolicy, CostModel, Decision, ExchangeAlgorithm, ExchangePlan,
        IoMoveOptions, LinkClaimLedger, MultipathOptions, NeighborhoodExchange, PlanOutcome,
        PlanPolicy, PlanRequest, ProxySearchConfig, SparseMover,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn umbrella_prelude_is_usable() {
        let machine = Machine::new(standard_shape(128).unwrap(), SimConfig::default());
        let mover = SparseMover::new(&machine);
        let mut prog = Program::new(&machine);
        let out = mover
            .plan(&mut prog, PlanRequest::new(NodeId(0), NodeId(5), 4096))
            .unwrap();
        assert!(out.handle.throughput(&prog.run()) > 0.0);
    }

    #[test]
    fn umbrella_prelude_covers_the_exchange() {
        let machine = Machine::new(standard_shape(128).unwrap(), SimConfig::default());
        let map = SparseSendMap::from_rank_pairs(&[(0, 64, 1 << 20), (3, 67, 4 << 10)]);
        let exchange = NeighborhoodExchange::new(&machine);
        let mut prog = Program::new(&machine);
        let plan = exchange.plan(&mut prog, &map, ExchangeAlgorithm::ProxyMultipath);
        let report = prog.run();
        assert!(report.all_delivered());
        assert!(plan.aggregate_throughput(&report) > 0.0);
    }
}
