//! End-to-end integration tests: the paper's headline claims, exercised
//! through the full stack (torus → netsim → comm → core/iosys).

use bgq_sparsemove::core::{plan_direct, plan_via_proxies, MultipathOptions};
use bgq_sparsemove::prelude::*;

#[test]
fn headline_two_x_point_to_point_improvement() {
    // Abstract: "up to a 2X improvement in achievable throughput compared
    // to the default mechanisms" — the Fig. 5 configuration.
    let machine = Machine::new(standard_shape(128).unwrap(), SimConfig::default());
    let mover = SparseMover::new(&machine)
        .with_search(ProxySearchConfig {
            max_proxies: 4,
            ..Default::default()
        });
    let bytes = 128u64 << 20;

    let mut pd = Program::new(&machine);
    let hd = plan_direct(&mut pd, NodeId(0), NodeId(127), bytes);
    let direct = hd.throughput(&pd.run());

    let mut pm = Program::new(&machine);
    let out = mover
        .plan(&mut pm, PlanRequest::new(NodeId(0), NodeId(127), bytes))
        .unwrap();
    let decision = out.decision;
    assert!(matches!(decision, Decision::Multipath { paths: 4 }), "{decision:?}");
    let multi = out.handle.throughput(&pm.run());

    let speedup = multi / direct;
    assert!(
        (1.8..=2.1).contains(&speedup),
        "expected ~2x (paper Fig. 5), got {speedup:.2}"
    );
    // Absolute calibration: ~1.6 GB/s direct, ~3.2 GB/s multipath.
    assert!((1.5e9..=1.65e9).contains(&direct), "{direct}");
    assert!((2.9e9..=3.3e9).contains(&multi), "{multi}");
}

#[test]
fn threshold_decision_agrees_with_simulation() {
    // The planner's model-based decision must match what the simulator
    // actually measures, on both sides of the threshold.
    let machine = Machine::new(standard_shape(128).unwrap(), SimConfig::default());
    let mover = SparseMover::new(&machine).with_search(ProxySearchConfig {
        max_proxies: 4,
        ..Default::default()
    });
    let th = mover.model().threshold_bytes(4).unwrap();

    for (bytes, proxies_should_win) in [(th / 8, false), (th * 8, true)] {
        let mut pd = Program::new(&machine);
        let hd = plan_direct(&mut pd, NodeId(0), NodeId(127), bytes);
        let t_direct = hd.completed_at(&pd.run());

        let sel = bgq_sparsemove::core::find_proxies(
            machine.shape(),
            Zone::Z2,
            NodeId(0),
            NodeId(127),
            &std::collections::HashSet::new(),
            &ProxySearchConfig {
                max_proxies: 4,
                ..Default::default()
            },
        );
        let mut pm = Program::new(&machine);
        let hm = plan_via_proxies(
            &mut pm,
            NodeId(0),
            NodeId(127),
            bytes,
            &sel.proxies(),
            &MultipathOptions::default(),
        );
        let t_multi = hm.completed_at(&pm.run());

        assert_eq!(
            t_multi < t_direct,
            proxies_should_win,
            "at {bytes} B: direct {t_direct}, multi {t_multi}"
        );
    }
}

#[test]
fn aggregation_beats_collective_io_on_both_patterns() {
    // Fig. 10's claim at the smallest scale, through the public API.
    let machine = Machine::new(standard_shape(128).unwrap(), SimConfig::default());
    let map = RankMap::default_map(*machine.shape(), 16);
    let mover = SparseMover::new(&machine);

    for (label, sizes) in [
        ("pattern 1", uniform_sizes(map.num_ranks(), 8 << 20, 1)),
        ("pattern 2", pareto_sizes(map.num_ranks(), &ParetoParams::default(), 1)),
    ] {
        let data = coalesce_to_nodes(&map, &sizes);

        let mut prog = Program::new(&machine);
        let handle = plan_collective_write(&mut prog, &data, &CollectiveIoConfig::default());
        let baseline = handle.throughput(&prog.run());

        let mut prog = Program::new(&machine);
        let plan = mover.plan_sparse_write(&mut prog, &data, &IoMoveOptions::default());
        let ours = plan.handle.throughput(&prog.run());

        assert!(
            ours > baseline * 1.3,
            "{label}: ours {ours:.3e} should clearly beat baseline {baseline:.3e}"
        );
        // And never exceed the physical pset ceiling (2 links x 2 GB/s).
        assert!(ours <= 4.0e9 * 1.01, "{label}: {ours:.3e} exceeds pset ceiling");
    }
}

#[test]
fn hacc_workload_improvement_in_paper_band() {
    // Fig. 11: up to ~1.5x; allow a generous band around it.
    let machine = Machine::new(shape_for_cores(8192).unwrap(), SimConfig::default());
    let map = RankMap::default_map(*machine.shape(), 16);
    let data = coalesce_to_nodes(&map, &hacc_workload(8192));

    let mut prog = Program::new(&machine);
    let handle = plan_collective_write(&mut prog, &data, &CollectiveIoConfig::default());
    let baseline = handle.throughput(&prog.run());

    let mover = SparseMover::new(&machine);
    let mut prog = Program::new(&machine);
    let plan = mover.plan_sparse_write(&mut prog, &data, &IoMoveOptions::default());
    let ours = plan.handle.throughput(&prog.run());

    let ratio = ours / baseline;
    assert!(
        (1.2..=2.5).contains(&ratio),
        "HACC improvement {ratio:.2} outside the plausible band"
    );
}

#[test]
fn degenerate_partitions_fall_back_gracefully() {
    // A partition with no room for proxies must still complete transfers.
    let machine = Machine::new(Shape::new(2, 1, 1, 1, 1), SimConfig::default());
    let mover = SparseMover::new(&machine);
    let mut prog = Program::new(&machine);
    let out = mover
        .plan(&mut prog, PlanRequest::new(NodeId(0), NodeId(1), 64 << 20))
        .unwrap();
    assert!(matches!(out.decision, Decision::Direct(_)));
    assert!(out.handle.throughput(&prog.run()) > 0.0);
}
