//! Conformance suite: the §IV.B analytical model vs. the simulator,
//! across a grid of message sizes, proxy counts and partitions.
//!
//! The paper derives its decision procedure from the closed-form model;
//! the planner trusts it. These tests pin how far the model may drift
//! from the network it abstracts.

use bgq_sparsemove::core::{
    find_proxies, plan_direct, plan_via_proxies, CostModel, MultipathOptions, ProxySearchConfig,
};
use bgq_sparsemove::prelude::*;
use std::collections::HashSet;

fn machine(nodes: u32) -> Machine {
    Machine::new(standard_shape(nodes).unwrap(), SimConfig::default())
}

fn proxies(m: &Machine, src: NodeId, dst: NodeId, k: usize) -> Vec<NodeId> {
    find_proxies(
        m.shape(),
        m.zone(),
        src,
        dst,
        &HashSet::new(),
        &ProxySearchConfig {
            min_proxies: 1,
            max_proxies: k,
            ..Default::default()
        },
    )
    .proxies()
}

#[test]
fn direct_times_match_within_two_percent() {
    let m = machine(128);
    let model = CostModel::from_sim_config(m.config(), m.mean_hops());
    for bytes in [16u64 << 10, 256 << 10, 1 << 20, 16 << 20, 128 << 20] {
        let mut p = Program::new(&m);
        let h = plan_direct(&mut p, NodeId(0), NodeId(127), bytes);
        let sim = h.completed_at(&p.run());
        let predicted = model.direct_time(bytes);
        let err = (sim - predicted).abs() / sim;
        assert!(
            err < 0.02,
            "direct {bytes}: model {predicted} vs sim {sim} ({:.1}% off)",
            err * 100.0
        );
    }
}

#[test]
fn proxy_times_match_within_ten_percent_for_disjoint_paths() {
    // The model assumes k equal disjoint paths; the search provides them
    // on this partition for k <= 4.
    let m = machine(128);
    let model = CostModel::from_sim_config(m.config(), m.mean_hops());
    for k in [3usize, 4] {
        let px = proxies(&m, NodeId(0), NodeId(127), k);
        assert_eq!(px.len(), k);
        for bytes in [512u64 << 10, 4 << 20, 64 << 20] {
            let mut p = Program::new(&m);
            let h = plan_via_proxies(
                &mut p,
                NodeId(0),
                NodeId(127),
                bytes,
                &px,
                &MultipathOptions::default(),
            );
            let sim = h.completed_at(&p.run());
            let predicted = model.proxy_time(bytes, k as u32);
            let err = (sim - predicted).abs() / sim;
            assert!(
                err < 0.10,
                "k={k} {bytes}: model {predicted} vs sim {sim} ({:.1}% off)",
                err * 100.0
            );
        }
    }
}

#[test]
fn measured_speedup_tracks_k_over_2() {
    let m = machine(128);
    let huge = 128u64 << 20;
    for k in [3usize, 4] {
        let px = proxies(&m, NodeId(0), NodeId(127), k);
        let mut pd = Program::new(&m);
        let t_direct = plan_direct(&mut pd, NodeId(0), NodeId(127), huge)
            .completed_at(&pd.run());
        let mut pm = Program::new(&m);
        let t_multi = plan_via_proxies(
            &mut pm,
            NodeId(0),
            NodeId(127),
            huge,
            &px,
            &MultipathOptions::default(),
        )
        .completed_at(&pm.run());
        let speedup = t_direct / t_multi;
        let ideal = k as f64 / 2.0;
        assert!(
            (speedup - ideal).abs() / ideal < 0.08,
            "k={k}: measured {speedup:.2} vs k/2 = {ideal}"
        );
    }
}

#[test]
fn simulated_crossover_within_one_bucket_of_model() {
    let m = machine(128);
    let model = CostModel::from_sim_config(m.config(), m.mean_hops());
    let px = proxies(&m, NodeId(0), NodeId(127), 4);
    let th = model.threshold_bytes(4).unwrap();

    let time_at = |bytes: u64, multi: bool| {
        let mut p = Program::new(&m);
        let h = if multi {
            plan_via_proxies(
                &mut p,
                NodeId(0),
                NodeId(127),
                bytes,
                &px,
                &MultipathOptions::default(),
            )
        } else {
            plan_direct(&mut p, NodeId(0), NodeId(127), bytes)
        };
        h.completed_at(&p.run())
    };

    // One doubling below the model threshold the simulator agrees direct
    // wins; one doubling above it agrees proxies win.
    assert!(time_at(th / 2, false) < time_at(th / 2, true));
    assert!(time_at(th * 2, true) < time_at(th * 2, false));
}

#[test]
fn model_conformance_holds_across_partitions() {
    for nodes in [128u32, 256, 512] {
        let m = machine(nodes);
        let model = CostModel::from_sim_config(m.config(), m.mean_hops());
        let dst = NodeId(m.shape().num_nodes() - 1);
        let bytes = 32u64 << 20;
        let mut p = Program::new(&m);
        let h = plan_direct(&mut p, NodeId(0), dst, bytes);
        let sim = h.completed_at(&p.run());
        let err = (sim - model.direct_time(bytes)).abs() / sim;
        assert!(err < 0.02, "{nodes} nodes: {:.2}% off", err * 100.0);
    }
}
