//! Golden-file snapshot tests: small fixed-point runs of the figure
//! experiments, diffed byte-for-byte against reference CSVs committed
//! under `tests/golden/`. Any change to the simulator, the cost model,
//! the planner, or the fault-free engine path shows up here as a diff —
//! intentional changes regenerate the files with
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden
//! ```
//!
//! and the new CSVs go in the same commit as the change that moved them.

use bgq_bench::experiments::{Fig10, Fig5, Fig7};
use bgq_bench::resilience::Resilience;
use bgq_bench::{fig10_scales, Experiment, ExperimentSession, ExchangeSweep};
use std::path::Path;

/// Run `exp` sequentially and return its CSV. One thread keeps the runs
/// cheap; the determinism suite separately proves N threads give the
/// same bytes.
fn csv_of<E: Experiment>(exp: &E) -> String {
    let session = ExperimentSession::new(1);
    session.run(exp).table(&exp.columns()).to_csv()
}

/// Compare against `tests/golden/<name>.csv`, or rewrite it when
/// `UPDATE_GOLDEN` is set.
fn check(name: &str, actual: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.csv"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create tests/golden/");
        std::fs::write(&path, actual).expect("rewrite golden file");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); generate it with \
             UPDATE_GOLDEN=1 cargo test --test golden",
            path.display()
        )
    });
    assert_eq!(
        actual,
        expected,
        "{name} output drifted from {}; if the change is intentional, \
         regenerate with UPDATE_GOLDEN=1 cargo test --test golden",
        path.display()
    );
}

/// Three sizes spanning the sweep: below the multipath threshold, just
/// above it, and the largest paper point.
fn golden_sizes() -> Vec<u64> {
    vec![64 << 10, 1 << 20, 128 << 20]
}

#[test]
fn fig5_matches_golden() {
    check("fig5", &csv_of(&Fig5 { sizes: golden_sizes() }));
}

#[test]
fn fig7_matches_golden() {
    check("fig7", &csv_of(&Fig7 { sizes: golden_sizes() }));
}

#[test]
fn fig10_matches_golden() {
    check(
        "fig10",
        &csv_of(&Fig10 {
            scales: fig10_scales(2048),
        }),
    );
}

#[test]
fn exchange_matches_golden() {
    // The 512-node slice of the exchange sweep: all four patterns, all
    // three algorithms per row. Pins the send-map generators, the
    // link-claim ledger, combining, and consensus discovery in one CSV.
    check("exchange", &csv_of(&ExchangeSweep::new(512)));
}

#[test]
fn resilience_matches_golden() {
    // Two sizes (one below the multipath threshold, one well above) at
    // the default seed — pins the retry loop and the fault schedule, not
    // just the fault-free engine path.
    check(
        "resilience",
        &csv_of(&Resilience::new(
            vec![64 << 10, 16 << 20],
            bgq_bench::resilience::DEFAULT_SEED,
        )),
    );
}
