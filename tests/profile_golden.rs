//! Golden pin of the bottleneck-attribution profiler: the fig5
//! representative profile artifact (deterministic JSON, see
//! [`bgq_obs::profile`]) must match `tests/golden/profile_fig5.json`
//! byte-for-byte, whether the session that warmed the plan cache ran on
//! one worker thread or four. Every number in the artifact is simulated
//! time, so any diff means either the simulator/planner moved
//! (regenerate alongside the change) or nondeterminism crept into the
//! attribution path (a bug).
//!
//! Regenerate after an intentional engine/planner change with
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test profile_golden
//! ```

use bgq_bench::experiments::Fig5;
use bgq_bench::{profile_for, ExperimentSession};
use std::path::Path;

fn fig5_profile_json(threads: usize) -> String {
    let session = ExperimentSession::new(threads);
    session.run(&Fig5 {
        sizes: vec![64 << 10, 16 << 20],
    });
    let art = profile_for("fig5", session.cache()).expect("fig5 has a representative profile");
    art.validate().expect("accounting must balance");
    art.to_json()
}

fn golden_path() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/profile_fig5.json")
}

#[test]
fn fig5_profile_matches_golden_across_thread_counts() {
    let seq = fig5_profile_json(1);
    let par = fig5_profile_json(4);
    assert_eq!(
        seq, par,
        "profile JSON must be byte-identical for 1 and 4 worker threads"
    );
    bgq_obs::json::validate(&seq).expect("profile must be valid JSON");

    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create tests/golden/");
        std::fs::write(&path, &seq).expect("rewrite golden profile");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); generate it with \
             UPDATE_GOLDEN=1 cargo test --test profile_golden",
            path.display()
        )
    });
    assert_eq!(
        seq,
        expected,
        "fig5 profile diverged from tests/golden/profile_fig5.json; if the \
         simulator or planner changed intentionally, regenerate with \
         UPDATE_GOLDEN=1 cargo test --test profile_golden"
    );
}

#[test]
fn exchange_profile_matches_golden_and_accounts_to_elapsed() {
    // One profiled run per exchange algorithm over the disjoint-heavy
    // map. `validate()` is the accounting pin: every transfer's
    // cap/link-blame/serialization decomposition must sum to its
    // elapsed time, so the per-algorithm link blame is trustworthy.
    let art = bgq_bench::exchange_profile(ExperimentSession::new(1).cache(), 32 << 20);
    art.validate().expect("exchange profile accounting must balance");
    for run in &art.runs {
        let blamed: f64 = run.link_blame().iter().map(|(_, s)| s).sum();
        let elapsed: f64 = run.transfers.iter().map(|t| t.elapsed()).sum();
        assert!(
            blamed <= elapsed + 1e-9,
            "{}: link blame {blamed} exceeds summed elapsed {elapsed}",
            run.name
        );
        assert!(
            (blamed - run.total_network_limited()).abs() <= 1e-6 * elapsed.max(1.0),
            "{}: link blame must equal network-limited time",
            run.name
        );
    }
    let json = art.to_json();
    bgq_obs::json::validate(&json).expect("profile must be valid JSON");

    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/profile_exchange.json");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &json).expect("rewrite golden exchange profile");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); generate it with \
             UPDATE_GOLDEN=1 cargo test --test profile_golden",
            path.display()
        )
    });
    assert_eq!(
        json, expected,
        "exchange profile diverged from tests/golden/profile_exchange.json; \
         regenerate with UPDATE_GOLDEN=1 cargo test --test profile_golden \
         if the planner or simulator changed intentionally"
    );
}

#[test]
fn golden_profile_diffs_clean_against_itself() {
    // The `--diff` baseline workflow rests on a parsed artifact comparing
    // clean against its own bytes.
    let art = bgq_obs::ProfileArtifact::from_json(&fig5_profile_json(2))
        .expect("own JSON must parse");
    assert!(art.diff(&art).is_empty(), "self-diff must be empty");
}
