//! Integration pin of the run-ledger baseline: the committed
//! `results/ledger/baseline.json` must stay a valid, self-consistent
//! sentinel baseline. The heavy check — regenerating the manifest and
//! byte-comparing it — lives in `just sentinel`; this test guards the
//! artifact itself so a hand-edited or merge-mangled baseline fails
//! `cargo test` before it silently poisons every future verdict.
//!
//! Re-pin after an intentional model change with
//!
//! ```text
//! UPDATE_GOLDEN=1 just sentinel
//! ```

use bgq_obs::{sentinel, RunManifest};
use std::path::Path;

fn baseline() -> (String, RunManifest) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("results/ledger/baseline.json");
    let js = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let manifest = RunManifest::from_json(&js)
        .unwrap_or_else(|e| panic!("{} must parse: {e}", path.display()));
    (js, manifest)
}

#[test]
fn baseline_parses_validates_and_round_trips_byte_exactly() {
    let (js, manifest) = baseline();
    manifest.validate().expect("baseline must validate");
    assert_eq!(
        manifest.to_json(),
        js,
        "baseline must be in canonical serialization (regenerate, don't hand-edit)"
    );
}

#[test]
fn baseline_covers_every_ledger_scenario() {
    let (_, manifest) = baseline();
    for name in [
        "fig5",
        "fig6",
        "fig7",
        "io",
        "resilience",
        "scale",
        "exchange",
    ] {
        let s = manifest
            .scenario(name)
            .unwrap_or_else(|| panic!("baseline must cover scenario {name}"));
        assert!(!s.metrics.is_empty(), "{name} must carry metrics");
        assert!(!s.config.is_empty(), "{name} must fingerprint its config");
    }
}

#[test]
fn baseline_self_diff_is_all_neutral() {
    let (_, manifest) = baseline();
    let report = sentinel::diff(&manifest, &manifest);
    assert!(!report.has_regressions(), "self-diff must not regress");
    let (regressed, improved, _) = report.totals();
    assert_eq!((regressed, improved), (0, 0));
    for s in &report.scenarios {
        assert!(
            s.config_drift.is_empty(),
            "{}: no drift against itself",
            s.name
        );
        assert!(s.attribution.is_empty(), "{}: no attribution", s.name);
    }
}

#[test]
fn baseline_carries_profiler_rollups_and_blame() {
    let (_, manifest) = baseline();
    // The sentinel's attribution machinery needs profiler rollups to
    // blame anything; make sure the baseline actually has them.
    let fig6 = manifest.scenario("fig6").expect("fig6 present");
    assert!(
        fig6.metrics
            .iter()
            .any(|(k, _)| k.starts_with("profile.") && k.contains(".cat.")),
        "fig6 must carry profiler category rollups"
    );
    assert!(!fig6.blame.is_empty(), "fig6 must carry per-link blame");
    assert!(
        manifest
            .scenarios
            .iter()
            .all(|s| s.metrics.iter().all(|(k, _)| !k.starts_with("wall."))),
        "wall-clock metrics must never reach the committed baseline"
    );
}
