//! Golden pin of the observability layer: the fig5 representative trace
//! (Chrome trace-event JSON) is generated twice — once on a 1-thread
//! session, once on a 4-thread session — and both must match
//! `tests/golden/trace_fig5.json` byte-for-byte. Timestamps come from the
//! simulation clock and the exporter totally orders events, so any diff
//! here means either the simulator moved (regenerate alongside the
//! change) or nondeterminism crept into the recording path (a bug).
//!
//! Regenerate after an intentional engine/planner change with
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test observability
//! ```

use bgq_bench::experiments::Fig5;
use bgq_bench::{trace_for, ExperimentSession, TRACE_BYTES};
use bgq_obs::MetricsRegistry;
use std::path::Path;
use std::sync::Arc;

/// Run the coarse fig5 sweep on `threads` workers with metrics attached,
/// then build the figure's representative trace from the warm cache.
fn fig5_trace_json(threads: usize) -> String {
    let session =
        ExperimentSession::new(threads).with_metrics(Arc::new(MetricsRegistry::new()));
    session.run(&Fig5 {
        sizes: vec![64 << 10, TRACE_BYTES],
    });
    trace_for("fig5", session.cache())
        .expect("fig5 has a representative trace")
        .to_chrome_json()
}

fn golden_path() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/trace_fig5.json")
}

#[test]
fn fig5_trace_matches_golden_across_thread_counts() {
    let seq = fig5_trace_json(1);
    let par = fig5_trace_json(4);
    assert_eq!(
        seq, par,
        "trace JSON must be byte-identical for 1 and 4 worker threads"
    );
    bgq_obs::json::validate(&seq).expect("trace must be valid JSON");

    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create tests/golden/");
        std::fs::write(&path, &seq).expect("rewrite golden trace");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); generate it with \
             UPDATE_GOLDEN=1 cargo test --test observability",
            path.display()
        )
    });
    assert_eq!(
        seq,
        expected,
        "fig5 trace diverged from tests/golden/trace_fig5.json; if the \
         simulator or planner changed intentionally, regenerate with \
         UPDATE_GOLDEN=1 cargo test --test observability"
    );
}

#[test]
fn update_golden_is_stable() {
    // Rewriting the golden file must be idempotent: generating the
    // artifact twice yields the same bytes (no hidden wall-clock or
    // iteration-order leakage).
    assert_eq!(fig5_trace_json(2), fig5_trace_json(2));
}
