//! Randomized consistency checks: the planner's model-driven decision and
//! the simulator's measured outcome must agree across random endpoint
//! pairs and message sizes. This is the contract the paper's decision
//! procedure ("calculate the message sizes to see if using intermediate
//! nodes benefits performance", §IV) rests on.

use bgq_sparsemove::core::{plan_direct, plan_via_proxies, DirectReason, MultipathOptions};
use bgq_sparsemove::prelude::*;
use proptest::prelude::*;
use std::collections::HashSet;

fn machine() -> Machine {
    Machine::new(standard_shape(256).unwrap(), SimConfig::default())
}

proptest! {
    // Each case runs a handful of simulations; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn multipath_decisions_win_and_direct_decisions_hold(
        src in 0u32..256,
        dst in 0u32..256,
        exp in 12u32..27, // 4 KB .. 64 MB
    ) {
        prop_assume!(src != dst);
        let m = machine();
        let mover = SparseMover::new(&m);
        let bytes = 1u64 << exp;
        let (src, dst) = (NodeId(src), NodeId(dst));

        let mut prog = Program::new(&m);
        let out = mover
            .plan(&mut prog, PlanRequest::new(src, dst, bytes))
            .unwrap();
        let (handle, decision) = (out.handle, out.decision);
        let t_planned = handle.completed_at(&prog.run());
        prop_assert!(t_planned.is_finite() && t_planned > 0.0);

        match decision {
            Decision::Multipath { paths } => {
                // The rejected alternative (direct) must not have been
                // meaningfully faster.
                let mut pd = Program::new(&m);
                let t_direct = plan_direct(&mut pd, src, dst, bytes)
                    .completed_at(&pd.run());
                prop_assert!(
                    t_planned <= t_direct * 1.05,
                    "planner chose {paths}-path multipath ({t_planned}) but direct was faster ({t_direct}) for {bytes} B {src}->{dst}"
                );
            }
            Decision::Direct(DirectReason::BelowThreshold) => {
                // The rejected alternative (multipath with whatever the
                // search finds) must not have been meaningfully faster.
                let sel = bgq_sparsemove::core::find_proxies(
                    m.shape(),
                    m.zone(),
                    src,
                    dst,
                    &HashSet::new(),
                    &ProxySearchConfig::default(),
                );
                if !sel.is_empty() {
                    let mut pm = Program::new(&m);
                    let t_multi = plan_via_proxies(
                        &mut pm,
                        src,
                        dst,
                        bytes,
                        &sel.proxies(),
                        &MultipathOptions::default(),
                    )
                    .completed_at(&pm.run());
                    prop_assert!(
                        t_planned <= t_multi * 1.05,
                        "planner went direct ({t_planned}) but multipath was faster ({t_multi}) for {bytes} B {src}->{dst}"
                    );
                }
            }
            Decision::Direct(DirectReason::NoDisjointPaths) => {
                // Nothing to compare: the search found no usable paths.
            }
            Decision::Direct(DirectReason::Requested) => {
                unreachable!("Auto policy never reports a requested direct plan")
            }
        }
    }
}
