//! Cross-crate physical invariants: conservation, ceilings, determinism.

use bgq_sparsemove::prelude::*;

fn machine_with_stats(nodes: u32) -> Machine {
    Machine::new(
        standard_shape(nodes).unwrap(),
        SimConfig::default().with_link_stats(),
    )
}

#[test]
fn full_stack_is_deterministic() {
    let run_once = || {
        let machine = Machine::new(standard_shape(128).unwrap(), SimConfig::default());
        let map = RankMap::default_map(*machine.shape(), 16);
        let data = coalesce_to_nodes(&map, &pareto_sizes(map.num_ranks(), &ParetoParams::default(), 99));
        let mover = SparseMover::new(&machine);
        let mut prog = Program::new(&machine);
        let plan = mover.plan_sparse_write(&mut prog, &data, &IoMoveOptions::default());
        let rep = prog.run();
        (plan.handle.completed_at(&rep), rep.makespan)
    };
    let a = run_once();
    let b = run_once();
    assert_eq!(a, b, "identical inputs must produce identical timings");
}

#[test]
fn aggregation_conserves_bytes_on_io_links() {
    // Every byte of the write must cross exactly one eleventh link.
    let machine = machine_with_stats(128);
    let map = RankMap::default_map(*machine.shape(), 16);
    let data = coalesce_to_nodes(&map, &uniform_sizes(map.num_ranks(), 1 << 20, 5));
    let total: u64 = data.iter().map(|&(_, b)| b).sum();

    let mover = SparseMover::new(&machine);
    let mut prog = Program::new(&machine);
    let _plan = mover.plan_sparse_write(&mut prog, &data, &IoMoveOptions::default());
    let rep = prog.run();

    let rb = rep.resource_bytes.as_ref().unwrap();
    let ntorus = (machine.shape().num_nodes() * 10) as usize;
    let io_bytes: f64 = rb[ntorus..].iter().sum();
    assert!(
        (io_bytes - total as f64).abs() < total as f64 * 1e-6 + 1.0,
        "io links carried {io_bytes}, expected {total}"
    );
}

#[test]
fn collective_io_conserves_bytes_on_io_links() {
    let machine = machine_with_stats(128);
    let map = RankMap::default_map(*machine.shape(), 16);
    let data = coalesce_to_nodes(&map, &uniform_sizes(map.num_ranks(), 1 << 20, 6));
    let total: u64 = data.iter().map(|&(_, b)| b).sum();

    let mut prog = Program::new(&machine);
    let _h = plan_collective_write(&mut prog, &data, &CollectiveIoConfig::default());
    let rep = prog.run();

    let rb = rep.resource_bytes.as_ref().unwrap();
    let ntorus = (machine.shape().num_nodes() * 10) as usize;
    let io_bytes: f64 = rb[ntorus..].iter().sum();
    assert!(
        (io_bytes - total as f64).abs() < total as f64 * 1e-6 + 1.0,
        "io links carried {io_bytes}, expected {total}"
    );
}

#[test]
fn no_link_ever_exceeds_capacity() {
    // Throughput accounting: bytes / makespan per resource <= capacity
    // (loose: a link cannot move more than capacity x makespan bytes).
    let machine = machine_with_stats(128);
    let mover = SparseMover::new(&machine);
    let map = RankMap::default_map(*machine.shape(), 16);
    let data = coalesce_to_nodes(&map, &uniform_sizes(map.num_ranks(), 4 << 20, 7));

    let mut prog = Program::new(&machine);
    let _ = mover.plan_sparse_write(&mut prog, &data, &IoMoveOptions::default());
    let rep = prog.run();

    let caps = machine.capacities();
    let rb = rep.resource_bytes.as_ref().unwrap();
    for (i, (&bytes, &cap)) in rb.iter().zip(caps.iter()).enumerate() {
        assert!(
            bytes <= cap * rep.makespan * 1.001 + 1.0,
            "resource {i} moved {bytes} B in {} s over a {cap} B/s link",
            rep.makespan
        );
    }
}

#[test]
fn default_io_write_uses_only_default_path() {
    // A single node's default write touches its bridge's io link and no
    // other pset's.
    let machine = machine_with_stats(256);
    let layout = machine.io_layout().clone();
    let mut prog = Program::new(&machine);
    let t = prog.write_default(NodeId(5), 1 << 20, Vec::new());
    let rep = prog.run();
    assert!(rep.delivered_at(t) > 0.0);

    let rb = rep.resource_bytes.as_ref().unwrap();
    let ntorus = (machine.shape().num_nodes() * 10) as usize;
    for (i, &b) in rb[ntorus..].iter().enumerate() {
        let expected = i as u32 == layout.io_link_index(layout.default_bridge(NodeId(5))).unwrap();
        assert_eq!(b > 0.0, expected, "io link {i}");
    }
}

#[test]
fn per_flow_cap_is_respected_end_to_end() {
    // A lone put can never beat the 1.6 GB/s protocol cap even on an
    // otherwise empty machine.
    let machine = Machine::new(standard_shape(512).unwrap(), SimConfig::default());
    let mut prog = Program::new(&machine);
    let bytes = 256u64 << 20;
    let t = prog.put(NodeId(0), NodeId(100), bytes);
    let rep = prog.run();
    let thr = bytes as f64 / rep.delivered_at(t);
    assert!(thr <= 1.6e9 * 1.001, "{thr}");
}

#[test]
fn aggregator_tables_match_io_layout_across_partitions() {
    for nodes in [128u32, 256, 512, 1024, 2048] {
        let machine = Machine::new(standard_shape(nodes).unwrap(), SimConfig::default());
        let layout = machine.io_layout();
        let table = AggregatorTable::precompute(layout);
        assert_eq!(table.num_psets(), layout.num_psets());
        // Every aggregator at every count is a valid node of its pset.
        for &c in &sdm_core::AGG_COUNTS {
            for (i, &a) in table.aggregators(c).iter().enumerate() {
                let pset = bgq_sparsemove::torus::PsetId(i as u32 / c);
                assert_eq!(layout.pset_of(a), pset);
            }
        }
    }
}
