//! Failure-injection tests: behaviour under degraded torus links.
//!
//! Deterministic routing cannot steer around a sick link, so a single
//! degraded link on the default path cripples a direct transfer; the
//! multipath scheme only loses the affected chunk's share.

use bgq_sparsemove::core::{find_proxies, plan_direct, plan_via_proxies, MultipathOptions};
use bgq_sparsemove::prelude::*;
use bgq_sparsemove::torus::route;
use std::collections::HashSet;

const BYTES: u64 = 64 << 20;

fn direct_time(machine: &Machine) -> f64 {
    let mut p = Program::new(machine);
    let h = plan_direct(&mut p, NodeId(0), NodeId(127), BYTES);
    h.completed_at(&p.run())
}

fn multipath_time(machine: &Machine) -> f64 {
    let sel = find_proxies(
        machine.shape(),
        machine.zone(),
        NodeId(0),
        NodeId(127),
        &HashSet::new(),
        &ProxySearchConfig {
            max_proxies: 4,
            ..Default::default()
        },
    );
    let mut p = Program::new(machine);
    let h = plan_via_proxies(
        &mut p,
        NodeId(0),
        NodeId(127),
        BYTES,
        &sel.proxies(),
        &MultipathOptions::default(),
    );
    h.completed_at(&p.run())
}

#[test]
fn degraded_default_path_cripples_direct_transfers() {
    let shape = standard_shape(128).unwrap();
    let healthy = Machine::new(shape, SimConfig::default());
    let t_healthy = direct_time(&healthy);

    // Degrade the first link of the default route to 10%.
    let first_link = route(&shape, NodeId(0), NodeId(127), healthy.zone()).links[0];
    let sick = Machine::new(shape, SimConfig::default())
        .with_degraded_links(&[(first_link, 0.1)]);
    let t_sick = direct_time(&sick);

    assert!(
        t_sick > t_healthy * 5.0,
        "a 10% link should dominate the direct path: {t_healthy} -> {t_sick}"
    );
}

#[test]
fn multipath_contains_the_blast_radius_of_one_sick_link() {
    let shape = standard_shape(128).unwrap();
    let healthy = Machine::new(shape, SimConfig::default());
    let t_healthy = multipath_time(&healthy);

    // Degrade the same default-route link: at most one of the four proxy
    // paths can cross it (they are pairwise disjoint).
    let first_link = route(&shape, NodeId(0), NodeId(127), healthy.zone()).links[0];
    let sick = Machine::new(shape, SimConfig::default())
        .with_degraded_links(&[(first_link, 0.1)]);
    let t_sick = multipath_time(&sick);

    // Equal splitting still waits for the chunk crossing the sick link,
    // but it carries only 1/4 of the bytes: the slowdown factor must be
    // about half the direct path's (which carries everything across it).
    let t_direct_sick = direct_time(&sick);
    let t_direct_healthy = {
        let healthy = Machine::new(shape, SimConfig::default());
        direct_time(&healthy)
    };
    let direct_slowdown = t_direct_sick / t_direct_healthy;
    let multi_slowdown = t_sick / t_healthy;
    assert!(
        multi_slowdown < direct_slowdown * 0.6,
        "multipath slowdown {multi_slowdown:.1}x should be well under direct's {direct_slowdown:.1}x"
    );
    // And degraded multipath must still beat degraded direct outright.
    assert!(t_sick < t_direct_sick);
}

#[test]
fn degradation_composes_with_io_plans() {
    // Degrading a torus link on the path to one bridge slows the default
    // write but the plan still completes and conserves bytes.
    let machine = Machine::new(standard_shape(128).unwrap(), SimConfig::default().with_link_stats());
    let layout = machine.io_layout().clone();
    let bridge = layout.default_bridge(NodeId(5));
    let link = route(machine.shape(), NodeId(5), bridge, machine.zone()).links[0];

    let sick = Machine::new(*machine.shape(), SimConfig::default().with_link_stats())
        .with_degraded_links(&[(link, 0.05)]);

    let run = |m: &Machine| {
        let mut p = Program::new(m);
        let t = p.write_default(NodeId(5), 8 << 20, Vec::new());
        let rep = p.run();
        rep.delivered_at(t)
    };
    let healthy_t = run(&machine);
    let sick_t = run(&sick);
    assert!(sick_t > healthy_t * 2.0, "{healthy_t} -> {sick_t}");
    assert!(sick_t.is_finite());
}

#[test]
#[should_panic(expected = "factor must be in")]
fn zero_factor_rejected() {
    let shape = standard_shape(128).unwrap();
    let _ = Machine::new(shape, SimConfig::default())
        .with_degraded_links(&[(bgq_sparsemove::torus::LinkId(0), 0.0)]);
}
