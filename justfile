# Common development tasks. Run with `just <target>`.

# Build, test, and lint — the gate every change must pass.
verify:
    cargo build --release
    cargo test -q
    cargo clippy --workspace --all-targets -- -D warnings

# Full figure reproduction into results/ (coffee-break sized).
reproduce:
    cargo run --release -p bgq-bench --bin reproduce -- --coarse --max-cores 16384 --threads 4 --timing

# Machinery + ablation benches.
bench:
    cargo bench
