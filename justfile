# Common development tasks. Run with `just <target>`.

# Build, test, and lint — the gate every change must pass.
verify: obs profile bench-smoke shard-smoke exchange sentinel
    cargo build --release
    cargo test -q --workspace
    cargo clippy --workspace --all-targets -- -D warnings

# Incremental-solver smoke check: a tiny scale sweep. The binary asserts
# full-vs-incremental bit-identity and that the dirty-set machinery
# actually avoided full re-levels (nonzero speedup counters).
bench-smoke:
    cargo run --release -p bgq-bench --bin scale -- --max-nodes 512 \
        --out results/obs/scale_smoke.json

# Sharded-determinism smoke: run the 512-node scale point at 1, 2, and
# 8 worker threads and byte-diff the wall-clock-free reports. Any
# difference means the shard merge leaked scheduling order into the
# simulated results — the one invariant the parallel engine must hold.
shard-smoke:
    for t in 1 2 8; do \
        cargo run --release -p bgq-bench --bin scale -- --max-nodes 512 \
            --threads $t \
            --out results/obs/scale_t$t.json \
            --report-out results/obs/scale_report_t$t.json; \
    done
    cmp results/obs/scale_report_t1.json results/obs/scale_report_t2.json
    cmp results/obs/scale_report_t1.json results/obs/scale_report_t8.json
    @echo "sharded reports byte-identical at 1/2/8 threads"

# Observability smoke check: run fig5 with artifacts, then validate them
# (JSON parses, CSV sorted/deduplicated, nothing undelivered).
obs:
    cargo run --release -p bgq-bench --bin fig5 -- --coarse --threads 4 \
        --metrics-out results/obs/fig5.metrics.csv \
        --trace-out results/obs/fig5.trace.json
    cargo run --release -p bgq-bench --bin obs_report -- --check \
        results/obs/fig5.metrics.csv results/obs/fig5.trace.json

# Bottleneck-attribution gate: profile fig6's contended coupling, print
# the "why was this slow" report, validate the artifact's accounting,
# and diff it against the committed baseline. After an intentional
# engine/planner change, re-baseline with `UPDATE_GOLDEN=1 just profile`.
profile:
    cargo run --release -p bgq-bench --bin profile -- fig6 \
        --profile-out results/obs/profile_fig6.json
    cargo run --release -p bgq-bench --bin obs_report -- --check \
        results/obs/profile_fig6.json
    @if [ -n "${UPDATE_GOLDEN:-}" ]; then \
        cp results/obs/profile_fig6.json results/BENCH_profile_fig6.json; \
        echo "re-baselined results/BENCH_profile_fig6.json"; \
    else \
        cargo run --release -p bgq-bench --bin obs_report -- --check --diff \
            results/obs/profile_fig6.json results/BENCH_profile_fig6.json; \
    fi

# Sparse-exchange gate: run the full sweep (the binary validates the
# artifact and asserts the ≥1.5× multipath-vs-direct bar on the
# disjoint-heavy pattern at 4,096 nodes), then byte-diff against the
# committed baseline — the artifact is pure simulated time, so any diff
# means the planner or simulator moved. Re-baseline an intentional
# change with `UPDATE_GOLDEN=1 just exchange`. Coffee-break sized
# (~40 min single-core; the 512-node slice is separately pinned as
# tests/golden/exchange.csv for the quick path).
exchange:
    cargo run --release -p bgq-bench --bin exchange -- \
        --out results/obs/exchange.json
    @if [ -n "${UPDATE_GOLDEN:-}" ]; then \
        cp results/obs/exchange.json results/BENCH_exchange.json; \
        echo "re-baselined results/BENCH_exchange.json"; \
    else \
        cmp results/obs/exchange.json results/BENCH_exchange.json && \
            echo "results/BENCH_exchange.json reproduced byte-exact"; \
    fi

# Run-ledger + regression sentinel: run the scenario sweep, validate the
# manifest artifact, cross-check it against the committed fig6 profile,
# and diff against the committed baseline — any REGRESSED verdict (with
# its profiler blame attribution) fails the gate. On an unchanged tree
# the manifest byte-matches the baseline. After an intentional model
# change, re-pin with `UPDATE_GOLDEN=1 just sentinel`. Inject a fake
# regression to see the attribution machinery work:
# `cargo run --release -p bgq-bench --bin sentinel -- --degrade-links 0.5 \
#      --out /tmp/degraded.json --no-history`
sentinel:
    @if [ -n "${UPDATE_GOLDEN:-}" ]; then \
        cargo run --release -p bgq-bench --bin sentinel -- --update-baseline; \
        echo "re-pinned results/ledger/baseline.json"; \
    else \
        cargo run --release -p bgq-bench --bin sentinel; \
    fi
    cargo run --release -p bgq-bench --bin obs_report -- --check \
        results/ledger/manifest.json
    cargo run --release -p bgq-bench --bin obs_report -- --check --cross \
        results/ledger/manifest.json results/BENCH_profile_fig6.json fig6
    cmp results/ledger/manifest.json results/ledger/baseline.json && \
        echo "results/ledger/baseline.json reproduced byte-exact"

# Full figure reproduction into results/ (coffee-break sized).
reproduce:
    cargo run --release -p bgq-bench --bin reproduce -- --coarse --max-cores 16384 --threads 4 --timing

# Machinery + ablation benches.
bench:
    cargo bench

# Coverage via cargo-llvm-cov when installed; otherwise fall back to a
# plain verbose test run (this container has no coverage tooling baked in).
cover:
    @if cargo llvm-cov --version >/dev/null 2>&1; then \
        cargo llvm-cov --workspace --summary-only; \
    else \
        echo "cargo-llvm-cov not installed; running plain tests instead"; \
        cargo test --workspace -- --nocapture; \
    fi

# Regenerate the golden reference CSVs (and the pinned fig5 trace and
# profile) after an intentional model change.
update-golden:
    UPDATE_GOLDEN=1 cargo test --release --test golden
    UPDATE_GOLDEN=1 cargo test --release --test observability
    UPDATE_GOLDEN=1 cargo test --release --test profile_golden
    UPDATE_GOLDEN=1 just profile
    UPDATE_GOLDEN=1 just exchange
    UPDATE_GOLDEN=1 just sentinel
