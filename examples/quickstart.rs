//! Quickstart: move one large message between two compute nodes of a
//! simulated 128-node BG/Q partition, letting the planner decide between
//! the direct default path and proxy-based multipath.
//!
//! Run with: `cargo run --release --example quickstart`

use bgq_sparsemove::prelude::*;

fn main() {
    // A 128-node partition (torus shape 2x2x4x4x2), paper-calibrated
    // network parameters.
    let machine = Machine::new(standard_shape(128).unwrap(), SimConfig::default());
    let mover = SparseMover::new(&machine);

    let src = NodeId(0);
    let dst = NodeId(machine.shape().num_nodes() - 1);

    println!("transferring between {src} and {dst} on a {} torus\n", machine.shape());
    println!("{:>10}  {:>12}  {:>10}", "size", "decision", "GB/s");

    for bytes in [4u64 << 10, 64 << 10, 1 << 20, 32 << 20] {
        let mut prog = Program::new(&machine);
        let outcome = mover
            .plan(&mut prog, PlanRequest::new(src, dst, bytes))
            .unwrap();
        let (handle, decision) = (outcome.handle, outcome.decision);
        let report = prog.run();
        let label = match decision {
            Decision::Direct(_) => "direct".to_string(),
            Decision::Multipath { paths } => format!("{paths} proxies"),
        };
        println!(
            "{:>9}K  {:>12}  {:>10.3}",
            bytes >> 10,
            label,
            handle.throughput(&report) / 1e9
        );
    }

    // The cost model behind the decision (§IV.B of the paper).
    let model = mover.model();
    println!(
        "\ncost model: >= {} proxies required, 4-proxy threshold at {} KB",
        model.min_beneficial_proxies(),
        model.threshold_bytes(4).unwrap() >> 10
    );
}
