//! Sparse neighborhood exchange: one send map, all three lowering
//! algorithms side by side on a simulated 512-node BG/Q partition.
//!
//! The map mixes the two regimes the sweep studies: a handful of
//! antipodal 32 MiB pairs (where the link-claim ledger finds
//! link-disjoint proxy paths and batch multipath wins) and a sprinkle
//! of small same-source sends (where message combining folds riders
//! into a carrier's wire put instead).
//!
//! Run with: `cargo run --release --example sparse_exchange`

use bgq_sparsemove::prelude::*;

fn main() {
    let machine = Machine::new(standard_shape(512).unwrap(), SimConfig::default());

    let mut map = SparseSendMap::new();
    // Antipodal heavy pairs — contend pairwise on the wrap links when
    // routed direct.
    for i in 0..4u32 {
        map.insert(NodeId(i * 64), NodeId(i * 64 + 256), 32 << 20);
    }
    // Small fan-out from one source — combining candidates.
    for peer in [1u32, 2, 3, 9] {
        map.insert(NodeId(0), NodeId(peer), 16 << 10);
    }

    println!(
        "exchange of {} pairs / {} MiB on a {} torus\n",
        map.len(),
        map.total_bytes() >> 20,
        machine.shape()
    );
    println!(
        "{:>16}  {:>10}  {:>10}  {:>5}  {:>9}  {:>8}",
        "algorithm", "GB/s", "makespan", "mp", "combined", "claimed"
    );

    for alg in ExchangeAlgorithm::ALL {
        let exchange = NeighborhoodExchange::new(&machine);
        let mut prog = Program::new(&machine);
        let plan = exchange.plan(&mut prog, &map, alg);
        let report = prog.run();
        assert!(report.all_delivered());
        println!(
            "{:>16}  {:>10.3}  {:>8.2}ms  {:>5}  {:>9}  {:>8}",
            alg.name(),
            plan.aggregate_throughput(&report) / 1e9,
            plan.completed_at(&report) * 1e3,
            plan.pairs_multipath(),
            plan.pairs_combined(),
            plan.ledger.len(),
        );
    }

    // Delivery is identical no matter the algorithm — only the clock
    // differs. (The differential test layer pins this byte-for-byte.)
    println!("\nevery pair's payload arrives in full under all three algorithms");
}
