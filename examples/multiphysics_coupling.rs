//! Multiphysics data coupling (the paper's motivating §I scenario): two
//! physics modules run on disjoint contiguous partitions of a 2K-node
//! machine; at every coupling step module S ships a field to module T
//! while the rest of the machine is communication-free — a *sparse* data
//! movement that leaves most torus links idle.
//!
//! The planner couples the groups over link-disjoint proxy-group paths
//! whenever the exchanged field is large enough.
//!
//! Run with: `cargo run --release --example multiphysics_coupling`

use bgq_sparsemove::core::{plan_group_direct, Decision};
use bgq_sparsemove::prelude::*;

fn main() {
    let machine = Machine::new(standard_shape(2048).unwrap(), SimConfig::default());
    let n = machine.shape().num_nodes();

    // Module S: an ocean model on the first 128 nodes; module T: an
    // atmosphere model on the A-opposed 128 nodes. Process i of S couples
    // to process i of T (contiguous mapping, as in CESM-style coupled
    // codes — the paper's §IV.C assumption).
    let ocean: Vec<NodeId> = (0..128).map(NodeId).collect();
    let atmosphere: Vec<NodeId> = (3 * n / 4..3 * n / 4 + 128).map(NodeId).collect();

    let mover = SparseMover::new(&machine);

    println!("coupling 128 ocean ranks to 128 atmosphere ranks on a {} torus", machine.shape());
    println!(
        "{:>12}  {:>12}  {:>14}  {:>14}  {:>8}",
        "field size", "decision", "direct GB/s", "planned GB/s", "speedup"
    );

    for bytes in [64u64 << 10, 1 << 20, 8 << 20, 64 << 20] {
        // Baseline: every pair uses the deterministic default path.
        let mut pd = Program::new(&machine);
        let hd = plan_group_direct(&mut pd, &ocean, &atmosphere, bytes);
        let t_direct = hd.completed_at(&pd.run());

        // Planner: group multipath when the cost model approves.
        let mut pm = Program::new(&machine);
        let (hm, decision) = mover.plan_group_coupling(&mut pm, &ocean, &atmosphere, bytes);
        let t_planned = hm.completed_at(&pm.run());

        let per_pair = bytes as f64;
        let label = match decision {
            Decision::Direct(_) => "direct".to_string(),
            Decision::Multipath { paths } => format!("{paths} groups"),
        };
        println!(
            "{:>11}K  {:>12}  {:>14.3}  {:>14.3}  {:>7.2}x",
            bytes >> 10,
            label,
            per_pair / t_direct / 1e9,
            per_pair / t_planned / 1e9,
            t_direct / t_planned
        );
    }

    println!("\nlarge coupled fields gain ~k/2 with k proxy groups (paper Eq. 5);");
    println!("small fields stay on the direct path (below the §IV.B threshold).");
}
