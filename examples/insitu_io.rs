//! In-situ analysis output (the paper's §I scenario): a simulation runs
//! in-situ feature detection, so only the ranks whose subdomain contains
//! the feature have data to write — a Pareto-sparse pattern. The reduced
//! dataset must reach the I/O nodes fast, but default MPI collective I/O
//! drains every pset through one bridge link and ignores I/O-node load.
//!
//! This example writes the same sparse dataset with (a) default MPI
//! collective I/O and (b) the paper's dynamic topology-aware aggregation,
//! and reports both throughputs plus the aggregator selection.
//!
//! Run with: `cargo run --release --example insitu_io`

use bgq_sparsemove::prelude::*;

fn main() {
    // 512 nodes = 8,192 cores, 4 psets / I/O nodes.
    let machine = Machine::new(standard_shape(512).unwrap(), SimConfig::default());
    let map = RankMap::default_map(*machine.shape(), 16);

    // The in-situ detector found features in a few subdomains: pattern 2.
    let rank_sizes = pareto_sizes(map.num_ranks(), &ParetoParams::default(), 2014);
    let data = coalesce_to_nodes(&map, &rank_sizes);
    let total: u64 = data.iter().map(|&(_, b)| b).sum();
    let with_data = data.iter().filter(|&&(_, b)| b > 0).count();
    println!(
        "in-situ reduced dataset: {:.2} GB on {}/{} nodes ({}% of dense volume)\n",
        total as f64 / 1e9,
        with_data,
        data.len(),
        (100.0 * total as f64 / (map.num_ranks() as u64 * (8 << 20)) as f64) as u32
    );

    // (a) Default MPI collective I/O.
    let mut prog = Program::new(&machine);
    let handle = plan_collective_write(&mut prog, &data, &CollectiveIoConfig::default());
    let baseline = handle.throughput(&prog.run());

    // (b) Topology-aware dynamic aggregation (Algorithm 2).
    let mover = SparseMover::new(&machine);
    let mut prog = Program::new(&machine);
    let plan = mover.plan_sparse_write(&mut prog, &data, &IoMoveOptions::default());
    let ours = plan.handle.throughput(&prog.run());

    println!("default MPI collective I/O : {:>7.3} GB/s", baseline / 1e9);
    println!(
        "topology-aware aggregation : {:>7.3} GB/s  ({:.2}x, {} aggregators/ION)",
        ours / 1e9,
        ours / baseline,
        plan.num_agg_per_ion
    );

    // Restart: read the checkpoint back (Algorithm 2 reversed).
    let mut prog = Program::new(&machine);
    let read_plan = mover.plan_sparse_read(&mut prog, &data, &IoMoveOptions::default());
    let read_thr = read_plan.handle.throughput(&prog.run());
    println!("restart read (ours)        : {:>7.3} GB/s", read_thr / 1e9);

    // Show the ION load balance the dynamic selection achieves.
    let layout = machine.io_layout();
    let mut per_ion = vec![0u64; layout.num_ions() as usize];
    for a in &plan.assignments {
        per_ion[layout.pset_of(a.to).0 as usize] += a.bytes;
    }
    println!("\nbytes per I/O node (ours):");
    for (i, b) in per_ion.iter().enumerate() {
        println!("  ion{i}: {:>6.1} MB", *b as f64 / 1e6);
    }
}
