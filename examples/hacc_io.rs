//! HACC I/O (the paper's §VI application benchmark): the cosmology code
//! periodically writes particle data; in this configuration only the MPI
//! ranks in the `[0.4N, 0.5N)` window write, and they write 10% of the
//! generated volume. The write is driven once with default MPI collective
//! I/O and once with the paper's customized (dynamic, topology-aware)
//! aggregator selection.
//!
//! Run with: `cargo run --release --example hacc_io [cores]`
//! (default 8,192 cores; the paper scales to 131,072).

use bgq_sparsemove::prelude::*;
use bgq_sparsemove::workloads::{total_write_bytes, writer_range, PARTICLE_BYTES};

fn main() {
    let cores: u32 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(8192);
    let shape = shape_for_cores(cores).unwrap_or_else(|| {
        eprintln!("no standard partition for {cores} cores (use 8192..131072, powers of two)");
        std::process::exit(1);
    });

    let machine = Machine::new(shape, SimConfig::default());
    let map = RankMap::default_map(shape, 16);
    let rank_sizes = hacc_workload(cores);
    let data = coalesce_to_nodes(&map, &rank_sizes);

    let total = total_write_bytes(cores);
    let writers = writer_range(cores);
    println!(
        "HACC I/O on {cores} cores ({} nodes, {} torus): {:.1} GB checkpoint (~{:.1}M particles)",
        shape.num_nodes(),
        shape,
        total as f64 / 1e9,
        (total / PARTICLE_BYTES) as f64 / 1e6
    );
    println!(
        "writers: ranks {}..{} ({} of {} ranks)\n",
        writers.start,
        writers.end,
        writers.len(),
        map.num_ranks()
    );

    let mut prog = Program::new(&machine);
    let handle = plan_collective_write(&mut prog, &data, &CollectiveIoConfig::default());
    let baseline = handle.throughput(&prog.run());

    let mover = SparseMover::new(&machine);
    let mut prog = Program::new(&machine);
    let plan = mover.plan_sparse_write(&mut prog, &data, &IoMoveOptions::default());
    let ours = plan.handle.throughput(&prog.run());

    println!("default MPI collective write : {:>7.3} GB/s", baseline / 1e9);
    println!(
        "customized aggregators       : {:>7.3} GB/s  ({:.2}x improvement, paper: up to ~1.5x)",
        ours / 1e9,
        ours / baseline
    );
}
