//! Time-to-solution of a coupled multiphysics run (the paper's §I claim:
//! "the network resources is underutilized and this leads to an increase
//! in the time-to-solution").
//!
//! Three modules (atmosphere / ocean / ice) share a 512-node partition;
//! every coupling step the atmosphere exchanges a field with the ocean
//! and the ocean with the ice, then everyone computes (communication-
//! silent). The example runs N coupling steps back-to-back with
//! (a) direct default-path coupling and (b) proxy-group multipath, and
//! reports total communication time plus a timeline of the final step.
//!
//! Run with: `cargo run --release --example coupled_timeline`

use bgq_sparsemove::core::{find_proxy_groups, plan_group_via, MultipathOptions, ProxyGroup};
use bgq_sparsemove::netsim::{gantt, trace, TransferId};
use bgq_sparsemove::prelude::*;
use bgq_sparsemove::workloads::{coupling_pairs, partition_modules};

const STEPS: usize = 8;

struct Coupling {
    sources: Vec<NodeId>,
    dests: Vec<NodeId>,
    groups: Vec<ProxyGroup>,
    field_bytes: u64,
}

fn main() {
    let machine = Machine::new(standard_shape(512).unwrap(), SimConfig::default());
    // The atmosphere and ocean sit at opposite ends of the allocation
    // (their coupling is the heavy one); the land model occupies the
    // middle and streams a small flux field to the in-situ visualization
    // module. Modules are sized so the heavy coupling's endpoints do not
    // blanket whole torus hyperplanes — otherwise no compute node is left
    // to serve as a proxy (the planner detects that and goes direct).
    let modules = partition_modules(
        machine.shape().num_nodes(),
        &[("atmosphere", 1), ("land", 5), ("ocean", 1), ("viz", 1)],
    );
    println!("module layout on a {} torus:", machine.shape());
    for m in &modules {
        println!("  {:<11} nodes {:>4}..{:<4}", m.name, m.nodes.start, m.nodes.end);
    }

    let cfg = ProxySearchConfig {
        min_proxies: 0,
        ..Default::default()
    };
    // The heavy coupling is searched per B plane (each plane's pairs
    // share one uniform displacement; see fig6's methodology note).
    let atm_ocn = coupling_pairs(&modules[0], &modules[2]);
    let (plane0, plane1): (Vec<_>, Vec<_>) = atm_ocn
        .iter()
        .partition(|&&(s, _)| machine.shape().coord(s).get(Dim::B) == 0);
    let couplings: Vec<Coupling> = [
        (plane0, 16u64 << 20),                                // atm -> ocn plane 0
        (plane1, 16 << 20),                                   // atm -> ocn plane 1
        (coupling_pairs(&modules[1], &modules[3]), 2 << 20),  // land -> viz (flux)
    ]
    .into_iter()
    .map(|(pairs, field_bytes)| {
        let (sources, dests): (Vec<NodeId>, Vec<NodeId>) = pairs.into_iter().unzip();
        let groups =
            find_proxy_groups(machine.shape(), machine.zone(), &sources, &dests, &cfg);
        Coupling {
            sources,
            dests,
            groups,
            field_bytes,
        }
    })
    .collect();
    println!(
        "\nproxy groups found: atm->ocn {} + {} (per plane), land->viz {}",
        couplings[0].groups.len(),
        couplings[1].groups.len(),
        couplings[2].groups.len()
    );

    let run = |multipath: bool| -> (f64, String) {
        let mut prog = Program::new(&machine);
        let mut gate: Option<TransferId> = None;
        for _ in 0..STEPS {
            let mut tokens = Vec::new();
            for c in &couplings {
                if multipath && c.groups.len() >= 3 {
                    let opts = MultipathOptions {
                        gate,
                        ..Default::default()
                    };
                    tokens.extend(
                        plan_group_via(
                            &mut prog,
                            &c.sources,
                            &c.dests,
                            c.field_bytes,
                            &c.groups,
                            false,
                            &opts,
                        )
                        .tokens,
                    );
                } else {
                    for (&s, &d) in c.sources.iter().zip(&c.dests) {
                        let deps: Vec<TransferId> = gate.into_iter().collect();
                        tokens.push(prog.put_after(s, d, c.field_bytes, deps, 0.0));
                    }
                }
            }
            // The coupler's step barrier.
            gate = Some(prog.modeled_sync(NodeId(0), 0.0, tokens));
        }
        let report = prog.run();
        let total = report.delivered_at(gate.unwrap());
        let rows = trace(prog.graph(), &report);
        let tail: Vec<_> = rows[rows.len().saturating_sub(10)..].to_vec();
        (total, gantt(&tail, report.makespan, 56))
    };

    let (t_direct, _) = run(false);
    let (t_multi, chart) = run(true);
    println!("\ncommunication time for {STEPS} coupling steps:");
    println!("  direct default paths : {:>8.2} ms", t_direct * 1e3);
    println!(
        "  proxy multipath      : {:>8.2} ms  ({:.2}x faster)",
        t_multi * 1e3,
        t_direct / t_multi
    );
    println!("\ntail of the multipath timeline (last coupling step):\n{chart}");
}
